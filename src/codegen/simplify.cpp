#include "codegen/simplify.hpp"

#include <algorithm>

#include "linalg/project.hpp"
#include "support/check.hpp"

namespace inlt {

namespace {

LinExpr affine_to_lin(const ConstraintSystem& cs, const AffineExpr& e) {
  LinExpr r = cs.zero_expr();
  r.constant = e.constant();
  for (const auto& [name, coef] : e.terms())
    r.coef[cs.var(name)] = checked_add(r.coef[cs.var(name)], coef);
  return r;
}

LinExpr negated_minus_one(const ConstraintSystem& cs, const LinExpr& e) {
  LinExpr r = cs.zero_expr();
  for (int i = 0; i < cs.num_vars(); ++i) r.coef[i] = checked_neg(e.coef[i]);
  r.constant = checked_sub(checked_neg(e.constant), 1);
  return r;
}

/// ctx ⊨ (e >= 0)?
bool implied(const ConstraintSystem& ctx, const LinExpr& e) {
  ConstraintSystem cs = ctx;
  cs.add_ge(negated_minus_one(cs, e));  // e <= -1
  return !integer_feasible(cs);
}

/// Is (e >= 0) satisfiable under ctx?
bool possible(const ConstraintSystem& ctx, const LinExpr& e) {
  ConstraintSystem cs = ctx;
  cs.add_ge(e);
  return integer_feasible(cs);
}

/// Is (e == 0) satisfiable under ctx?
bool eq_possible(const ConstraintSystem& ctx, const LinExpr& e) {
  ConstraintSystem cs = ctx;
  cs.add_eq(e);
  return integer_feasible(cs);
}

// Bound-term constraint on variable v: lower => den*v - e >= 0,
// upper => e - den*v >= 0 (exact for integers since den > 0).
LinExpr term_constraint(const ConstraintSystem& cs, const std::string& v,
                        const BoundTerm& t, bool lower) {
  LinExpr e = affine_to_lin(cs, t.expr);
  int vi = cs.var(v);
  LinExpr r = cs.zero_expr();
  if (lower) {
    for (int i = 0; i < cs.num_vars(); ++i) r.coef[i] = checked_neg(e.coef[i]);
    r.constant = checked_neg(e.constant);
    r.coef[vi] = checked_add(r.coef[vi], t.den);
  } else {
    r = e;
    r.coef[vi] = checked_sub(r.coef[vi], t.den);
  }
  return r;
}

struct Simplifier {
  SimplifyOptions opts;

  // Simplify a tight bound: drop terms implied by the others (plus the
  // opposite bound) under ctx.
  void simplify_tight(ConstraintSystem& ctx_with_v, const std::string& v,
                      std::vector<BoundTerm>& terms,
                      const std::vector<BoundTerm>& opposite, bool lower) {
    // Constant folding first.
    bool all_const = std::all_of(terms.begin(), terms.end(),
                                 [](const BoundTerm& t) {
                                   return t.expr.is_constant();
                                 });
    if (all_const && terms.size() > 1) {
      i64 best = 0;
      bool first = true;
      for (const BoundTerm& t : terms) {
        i64 val = lower ? ceil_div(t.expr.constant(), t.den)
                        : floor_div(t.expr.constant(), t.den);
        best = first ? val : (lower ? std::max(best, val)
                                    : std::min(best, val));
        first = false;
      }
      terms = {BoundTerm(AffineExpr(best))};
      return;
    }
    for (size_t i = 0; i < terms.size() && terms.size() > 1;) {
      ConstraintSystem cs = ctx_with_v;
      for (size_t j = 0; j < terms.size(); ++j)
        if (j != i) cs.add_ge(term_constraint(cs, v, terms[j], lower));
      for (const BoundTerm& o : opposite)
        cs.add_ge(term_constraint(cs, v, o, !lower));
      if (implied(cs, term_constraint(cs, v, terms[i], lower)))
        terms.erase(terms.begin() + static_cast<long>(i));
      else
        ++i;
    }
  }

  // Simplify a cover bound: drop terms dominated by another term.
  // For a cover lower (min), t is droppable when some other t'
  // satisfies t'/d' <= t/d everywhere; symmetric for upper (max).
  void simplify_cover(const ConstraintSystem& ctx,
                      std::vector<BoundTerm>& terms, bool lower) {
    for (size_t i = 0; i < terms.size() && terms.size() > 1;) {
      bool dominated = false;
      for (size_t j = 0; j < terms.size() && !dominated; ++j) {
        if (j == i) continue;
        // lower: t_j/d_j <= t_i/d_i  <=>  d_i*t_j <= d_j*t_i
        AffineExpr diff =
            lower ? terms[i].expr * terms[j].den - terms[j].expr * terms[i].den
                  : terms[j].expr * terms[i].den - terms[i].expr * terms[j].den;
        if (implied(ctx, affine_to_lin(ctx, diff))) dominated = true;
      }
      if (dominated)
        terms.erase(terms.begin() + static_cast<long>(i));
      else
        ++i;
    }
  }

  NodePtr simplify_node(const Node& n, ConstraintSystem ctx) {
    // Guards first: drop implied, kill impossible, strengthen ctx.
    std::vector<Guard> kept;
    for (const Guard& g : n.guards()) {
      switch (g.kind) {
        case Guard::Kind::kGeZero: {
          LinExpr e = affine_to_lin(ctx, g.expr);
          if (implied(ctx, e)) break;          // redundant
          if (!possible(ctx, e)) return nullptr;  // dead subtree
          kept.push_back(g);
          ctx.add_ge(e);
          break;
        }
        case Guard::Kind::kEqZero: {
          LinExpr e = affine_to_lin(ctx, g.expr);
          LinExpr ne = ctx.zero_expr();
          for (int i = 0; i < ctx.num_vars(); ++i)
            ne.coef[i] = checked_neg(e.coef[i]);
          ne.constant = checked_neg(e.constant);
          if (!eq_possible(ctx, e)) return nullptr;
          if (implied(ctx, e) && implied(ctx, ne)) break;  // always 0
          kept.push_back(g);
          ctx.add_eq(e);
          break;
        }
        case Guard::Kind::kDivisible: {
          if (g.modulus == 1) break;  // trivially true
          // Feasibility with a fresh quotient variable; the equality
          // also strengthens the context for nested checks.
          LinExpr e = affine_to_lin(ctx, g.expr);
          int q = ctx.add_var("$q" + std::to_string(ctx.num_vars()));
          e.coef.push_back(0);  // resize to the new width
          e.coef[q] = checked_neg(g.modulus);
          if (!eq_possible(ctx, e)) return nullptr;
          kept.push_back(g);
          ctx.add_eq(e);
          break;
        }
      }
    }

    if (n.is_stmt()) {
      NodePtr out = Node::stmt(n.stmt_data().clone());
      for (Guard& g : kept) out->add_guard(std::move(g));
      return out;
    }

    // Loop: simplify bounds under the context extended with v.
    Bound lo = n.lower(), hi = n.upper();
    ConstraintSystem ctx_v = ctx;
    ctx_v.add_var(n.var());
    if (lo.mode == Bound::Mode::kTight && hi.mode == Bound::Mode::kTight) {
      simplify_tight(ctx_v, n.var(), lo.terms, hi.terms, /*lower=*/true);
      simplify_tight(ctx_v, n.var(), hi.terms, lo.terms, /*lower=*/false);
    } else {
      if (lo.mode == Bound::Mode::kCover)
        simplify_cover(ctx, lo.terms, /*lower=*/true);
      else
        simplify_tight(ctx_v, n.var(), lo.terms, {}, true);
      if (hi.mode == Bound::Mode::kCover)
        simplify_cover(ctx, hi.terms, /*lower=*/false);
      else
        simplify_tight(ctx_v, n.var(), hi.terms, {}, false);
    }
    if (lo.terms.size() == 1) lo.mode = Bound::Mode::kTight;
    if (hi.terms.size() == 1) hi.mode = Bound::Mode::kTight;

    // Iteration-range constraints for children (tight bounds only —
    // cover bounds are unions and contribute nothing sound).
    if (lo.mode == Bound::Mode::kTight)
      for (const BoundTerm& t : lo.terms)
        ctx_v.add_ge(term_constraint(ctx_v, n.var(), t, true));
    if (hi.mode == Bound::Mode::kTight)
      for (const BoundTerm& t : hi.terms)
        ctx_v.add_ge(term_constraint(ctx_v, n.var(), t, false));
    if (!integer_feasible(ctx_v)) return nullptr;  // empty loop

    NodePtr out = Node::loop(n.var(), std::move(lo), std::move(hi), n.step());
    for (const NodePtr& c : n.children()) {
      NodePtr sc = simplify_node(*c, ctx_v);
      if (sc) out->add_child(std::move(sc));
    }
    if (out->num_children() == 0) return nullptr;
    for (Guard& g : kept) out->add_guard(std::move(g));
    return out;
  }
};

}  // namespace

Program simplify_program(const Program& p, const SimplifyOptions& opts) {
  Program out;
  ConstraintSystem ctx(p.params());
  for (const std::string& param : p.params()) {
    out.add_param(param);
    if (opts.param_at_least != INT64_MIN)
      ctx.add_var_ge(ctx.var(param), opts.param_at_least);
  }
  Simplifier s{opts};
  for (const NodePtr& r : p.roots()) {
    NodePtr sr = s.simplify_node(*r, ctx);
    if (sr) out.add_root(std::move(sr));
  }
  out.validate();
  return out;
}

}  // namespace inlt
