#include "support/trace.hpp"

#include <algorithm>
#include <chrono>
#include <iomanip>
#include <map>
#include <sstream>

#include "support/json.hpp"

namespace inlt {

namespace {

i64 steady_ns() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

}  // namespace

Tracer& Tracer::global() {
  static Tracer t;
  return t;
}

i64 Tracer::now_ns() const {
  return steady_ns() - epoch_ns_.load(std::memory_order_relaxed);
}

void Tracer::enable() {
  epoch_ns_.store(steady_ns(), std::memory_order_relaxed);
  g_enabled_.store(true, std::memory_order_relaxed);
}

void Tracer::disable() {
  g_enabled_.store(false, std::memory_order_relaxed);
}

Tracer::ThreadBuffer& Tracer::local_buffer() {
  // The shared_ptr keeps the buffer alive in the registry even after
  // the owning thread exits, so export never races thread teardown.
  thread_local std::shared_ptr<ThreadBuffer> buf;
  if (!buf) {
    buf = std::make_shared<ThreadBuffer>();
    std::lock_guard<std::mutex> lock(mu_);
    buf->tid = next_tid_++;
    buffers_.push_back(buf);
  }
  return *buf;
}

void Tracer::record(TraceEvent e) {
  ThreadBuffer& buf = local_buffer();
  e.tid = buf.tid;
  std::lock_guard<std::mutex> lock(buf.mu);
  buf.events.push_back(std::move(e));
}

void Tracer::counter(const char* name, const char* cat, const char* key,
                     i64 value) {
  if (!enabled()) return;
  TraceEvent e;
  e.name = name;
  e.cat = cat;
  e.start_ns = now_ns();
  e.ph = 'C';
  e.args.push_back(TraceArg{key, std::to_string(value), false});
  record(std::move(e));
}

void Tracer::set_thread_name(const std::string& name) {
  ThreadBuffer& buf = local_buffer();
  std::lock_guard<std::mutex> lock(buf.mu);
  buf.name = name;
}

void Tracer::clear() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& buf : buffers_) {
    std::lock_guard<std::mutex> bl(buf->mu);
    buf->events.clear();
  }
}

size_t Tracer::event_count() const {
  std::lock_guard<std::mutex> lock(mu_);
  size_t n = 0;
  for (const auto& buf : buffers_) {
    std::lock_guard<std::mutex> bl(buf->mu);
    n += buf->events.size();
  }
  return n;
}

std::vector<TraceEvent> Tracer::events() const {
  std::vector<TraceEvent> out;
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (const auto& buf : buffers_) {
      std::lock_guard<std::mutex> bl(buf->mu);
      out.insert(out.end(), buf->events.begin(), buf->events.end());
    }
  }
  std::stable_sort(out.begin(), out.end(),
                   [](const TraceEvent& a, const TraceEvent& b) {
                     return a.start_ns < b.start_ns;
                   });
  return out;
}

std::string Tracer::chrome_trace_json() const {
  std::vector<TraceEvent> evs = events();
  std::ostringstream os;
  os << "{\"traceEvents\":[";
  bool first = true;
  // Thread-name metadata first, so Perfetto labels the worker tracks.
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (const auto& buf : buffers_) {
      std::lock_guard<std::mutex> bl(buf->mu);
      if (buf->name.empty()) continue;
      if (!first) os << ",\n";
      first = false;
      os << "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":"
         << buf->tid << ",\"args\":{\"name\":\"" << json_escape(buf->name)
         << "\"}}";
    }
  }
  for (const TraceEvent& e : evs) {
    if (!first) os << ",\n";
    first = false;
    os << "{\"name\":\"" << json_escape(e.name) << "\",\"cat\":\""
       << json_escape(e.cat) << "\",\"ph\":\"" << e.ph
       << "\",\"ts\":" << std::fixed << std::setprecision(3)
       << static_cast<double>(e.start_ns) / 1000.0;
    if (e.ph == 'X')
      os << ",\"dur\":" << static_cast<double>(e.dur_ns) / 1000.0;
    os << ",\"pid\":1,\"tid\":" << e.tid;
    if (!e.args.empty()) {
      os << ",\"args\":{";
      bool afirst = true;
      for (const TraceArg& a : e.args) {
        if (!afirst) os << ",";
        afirst = false;
        os << "\"" << json_escape(a.key) << "\":";
        if (a.is_string)
          os << "\"" << json_escape(a.value) << "\"";
        else
          os << a.value;
      }
      os << "}";
    }
    os << "}";
  }
  os << "]}\n";
  return os.str();
}

namespace {

struct Agg {
  i64 count = 0;
  i64 total_ns = 0;
};

// cat -> (name -> aggregate); the per-category rollup is the sum of
// its names. Counter samples carry no duration and stay out of the
// wall-time summaries.
std::map<std::string, std::map<std::string, Agg>> aggregate(
    const std::vector<TraceEvent>& evs) {
  std::map<std::string, std::map<std::string, Agg>> by_cat;
  for (const TraceEvent& e : evs) {
    if (e.ph != 'X') continue;
    Agg& a = by_cat[e.cat][e.name];
    ++a.count;
    a.total_ns += e.dur_ns;
  }
  return by_cat;
}

}  // namespace

std::string Tracer::summary_text() const {
  auto by_cat = aggregate(events());
  std::ostringstream os;
  os << std::left << std::setw(32) << "span" << std::right << std::setw(10)
     << "count" << std::setw(14) << "total ms" << std::setw(12) << "mean us"
     << "\n";
  for (const auto& [cat, names] : by_cat) {
    Agg roll;
    for (const auto& [name, a] : names) {
      roll.count += a.count;
      roll.total_ns += a.total_ns;
    }
    os << std::left << std::setw(32) << cat << std::right << std::setw(10)
       << roll.count << std::setw(14) << std::fixed << std::setprecision(3)
       << static_cast<double>(roll.total_ns) / 1e6 << std::setw(12)
       << std::setprecision(1)
       << (roll.count ? static_cast<double>(roll.total_ns) / 1e3 / roll.count
                      : 0.0)
       << "\n";
    for (const auto& [name, a] : names) {
      os << std::left << std::setw(32) << ("  " + name) << std::right
         << std::setw(10) << a.count << std::setw(14) << std::fixed
         << std::setprecision(3) << static_cast<double>(a.total_ns) / 1e6
         << std::setw(12) << std::setprecision(1)
         << (a.count ? static_cast<double>(a.total_ns) / 1e3 / a.count : 0.0)
         << "\n";
    }
  }
  return os.str();
}

std::string Tracer::summary_json() const {
  auto by_cat = aggregate(events());
  std::ostringstream os;
  os << "{\"categories\":{";
  bool cfirst = true;
  for (const auto& [cat, names] : by_cat) {
    Agg roll;
    for (const auto& [name, a] : names) {
      roll.count += a.count;
      roll.total_ns += a.total_ns;
    }
    if (!cfirst) os << ",";
    cfirst = false;
    os << "\"" << json_escape(cat) << "\":{\"count\":" << roll.count
       << ",\"total_ns\":" << roll.total_ns << ",\"names\":{";
    bool nfirst = true;
    for (const auto& [name, a] : names) {
      if (!nfirst) os << ",";
      nfirst = false;
      os << "\"" << json_escape(name) << "\":{\"count\":" << a.count
         << ",\"total_ns\":" << a.total_ns << "}";
    }
    os << "}}";
  }
  os << "}}";
  return os.str();
}

void ScopedSpan::arg(const char* key, i64 v) {
  if (!active_) return;
  args_.push_back(TraceArg{key, std::to_string(v), false});
}

void ScopedSpan::arg(const char* key, const std::string& v) {
  if (!active_) return;
  args_.push_back(TraceArg{key, v, true});
}

void ScopedSpan::arg(const char* key, const char* v) {
  if (!active_) return;
  args_.push_back(TraceArg{key, v, true});
}

void ScopedSpan::arg(const char* key, bool v) {
  if (!active_) return;
  args_.push_back(TraceArg{key, v ? "true" : "false", false});
}

void ScopedSpan::finish() {
  Tracer& tracer = Tracer::global();
  TraceEvent e;
  e.name = name_;
  e.cat = cat_;
  e.start_ns = start_ns_;
  e.dur_ns = tracer.now_ns() - start_ns_;
  e.args = std::move(args_);
  tracer.record(std::move(e));
}

}  // namespace inlt
