// inlt runtime execution profiler — per-worker timelines for the
// partitioned parallel engine.
//
// The parallel driver (exec/parallel.hpp) proves a run is *correct*
// (bit-identical to serial); this module answers why it is fast or
// slow. When profiling is enabled, every worker of a partitioned run
// records, per chunked activation of a marked doall loop:
//
//   * the time spent waiting at the entry and exit ExecBarriers,
//   * the time spent executing its own chunk (per partitioned level),
//   * empty-chunk activations (more workers than iterations),
//
// and the driver aggregates the records — together with the per-worker
// InterpStats it already collects — into one ProfileReport per
// partitioned run: per-worker utilization, load-imbalance ratio,
// barrier-wait share, worker-0 serial-section time, and the *measured*
// parallel fraction that the static cost model
// (model/cost.hpp, CostEstimate::parallel_fraction) only predicts.
//
// Overhead contract: profiling is disabled by default. The parallel
// driver samples `ExecProfiler::enabled()` once per run to decide
// whether workers carry a profile sink at all; a worker whose sink is
// null pays one relaxed atomic load per chunked activation (the
// tracing gate it shares with the span exporter) and nothing else — no
// clock reads, no allocation. Enabling the profiler must not change
// execution results: Memory stays bit-identical and InterpStats equal
// (tests/exec/test_profile_exec.cpp enforces both).
#pragma once

#include <atomic>
#include <mutex>
#include <string>
#include <vector>

#include "support/checked_int.hpp"

namespace inlt {

/// Per-(worker, partitioned-level) tally. Indexed by the VM's internal
/// loop id while recording; the driver maps the marked ids onto
/// ProfileReport::levels when it builds the report.
struct LevelTally {
  i64 activations = 0;  ///< chunked activations seen (incl. empty chunks)
  i64 chunks = 0;       ///< non-empty chunks executed
  i64 busy_ns = 0;      ///< time inside those chunks
};

/// What one worker of one partitioned run did with its time.
struct WorkerProfile {
  int worker = -1;
  i64 busy_ns = 0;          ///< executing its own chunks
  i64 barrier_wait_ns = 0;  ///< waiting at entry + exit barriers
  i64 chunks = 0;           ///< non-empty chunk activations executed
  i64 empty_chunks = 0;     ///< activations with no iterations for us
  // Mirror of the worker's InterpStats (filled by the driver).
  i64 instances = 0;
  i64 loop_iterations = 0;
  /// Per-VM-loop tallies while recording; per-report-level after
  /// aggregation (aligned with ProfileReport::levels).
  std::vector<LevelTally> levels;
};

/// One partitioned doall level of the report, aggregated over workers.
struct LevelProfile {
  std::string var;      ///< loop variable of the partitioned level
  i64 activations = 0;  ///< times the team executed this level
  i64 chunks = 0;       ///< non-empty chunks, summed over workers
  i64 busy_ns = 0;      ///< chunk time, summed over workers
  i64 max_worker_busy_ns = 0;  ///< busiest worker's share of busy_ns
};

/// Everything measured about one partitioned run (or, via
/// ExecProfiler::merged(), the sum of several runs of the same width).
struct ProfileReport {
  int workers = 0;
  i64 runs = 1;      ///< partitioned runs folded into this report
  i64 wall_ns = 0;   ///< driver wall time, dispatch to last return
  std::vector<WorkerProfile> per_worker;
  std::vector<LevelProfile> levels;  ///< partitioned levels, nest order

  /// Model comparison, filled by the caller when a prediction exists
  /// (model/cost.hpp): < 0 means "no prediction attached".
  double predicted_parallel_fraction = -1.0;
  double predicted_speedup = 0.0;  ///< Amdahl at `workers` (0 = none)

  // -- derived metrics --
  /// Chunk-execution time summed over workers (the parallel work).
  i64 total_busy_ns() const;
  /// Barrier-wait time summed over workers.
  i64 total_wait_ns() const;
  /// Worker 0's time outside chunks and barriers: the serial sections
  /// (plus dispatch overhead, which rides with them).
  i64 serial_ns() const;
  /// busy / wall for one worker (0 when wall is unknown).
  double utilization(int worker) const;
  /// Mean of utilization over all workers.
  double avg_utilization() const;
  /// max(busy) / mean(busy) over workers; 1 is perfectly balanced,
  /// `workers` means one worker did everything. 0 when no chunk ran.
  double load_imbalance() const;
  /// Aggregate share of worker time spent waiting at barriers.
  double barrier_share() const;
  /// Parallel work / (parallel work + serial work) — the measured
  /// counterpart of CostEstimate::parallel_fraction.
  double measured_parallel_fraction() const;

  /// Human-readable report (deterministic layout; the timing values
  /// themselves vary run to run).
  std::string to_text() const;
  /// Machine-readable form, one object per report.
  std::string to_json() const;
};

/// Process-wide collector for partitioned-run profiles. Mirrors the
/// Tracer's gate design: `enabled()` is one relaxed atomic load, and
/// everything else only runs when a caller opted in.
class ExecProfiler {
 public:
  static ExecProfiler& global();

  void enable();
  void disable();

  /// The hot-path gate: one relaxed atomic load.
  static bool enabled() {
    return g_enabled_.load(std::memory_order_relaxed);
  }

  /// Drop every collected report.
  void clear();

  /// Append one run's report (thread-safe; called by the driver).
  void add_report(ProfileReport r);

  size_t report_count() const;
  std::vector<ProfileReport> reports() const;

  /// Sum of every collected report: wall times and per-worker tallies
  /// add up (workers matched by index, levels by variable name); the
  /// width is the maximum seen. Returns a default report when empty.
  ProfileReport merged() const;

  ExecProfiler(const ExecProfiler&) = delete;
  ExecProfiler& operator=(const ExecProfiler&) = delete;

 private:
  ExecProfiler() = default;

  inline static std::atomic<bool> g_enabled_{false};
  mutable std::mutex mu_;
  std::vector<ProfileReport> reports_;
};

/// Monotonic nanoseconds for profile timestamps (raw steady clock; the
/// report only ever uses differences).
i64 profile_now_ns();

}  // namespace inlt
