// ProfileReport aggregation and rendering (see profile.hpp).
#include "support/profile.hpp"

#include <algorithm>
#include <chrono>
#include <iomanip>
#include <map>
#include <sstream>

#include "support/json.hpp"

namespace inlt {

i64 profile_now_ns() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

i64 ProfileReport::total_busy_ns() const {
  i64 n = 0;
  for (const WorkerProfile& w : per_worker) n += w.busy_ns;
  return n;
}

i64 ProfileReport::total_wait_ns() const {
  i64 n = 0;
  for (const WorkerProfile& w : per_worker) n += w.barrier_wait_ns;
  return n;
}

i64 ProfileReport::serial_ns() const {
  if (per_worker.empty()) return 0;
  const WorkerProfile& w0 = per_worker.front();
  return std::max<i64>(0, wall_ns - w0.busy_ns - w0.barrier_wait_ns);
}

double ProfileReport::utilization(int worker) const {
  if (wall_ns <= 0 || worker < 0 ||
      worker >= static_cast<int>(per_worker.size()))
    return 0.0;
  return static_cast<double>(per_worker[worker].busy_ns) /
         static_cast<double>(wall_ns);
}

double ProfileReport::avg_utilization() const {
  if (per_worker.empty()) return 0.0;
  double s = 0;
  for (size_t w = 0; w < per_worker.size(); ++w)
    s += utilization(static_cast<int>(w));
  return s / static_cast<double>(per_worker.size());
}

double ProfileReport::load_imbalance() const {
  i64 total = total_busy_ns();
  if (total <= 0 || per_worker.empty()) return 0.0;
  i64 mx = 0;
  for (const WorkerProfile& w : per_worker) mx = std::max(mx, w.busy_ns);
  double mean =
      static_cast<double>(total) / static_cast<double>(per_worker.size());
  return mean > 0 ? static_cast<double>(mx) / mean : 0.0;
}

double ProfileReport::barrier_share() const {
  if (wall_ns <= 0 || per_worker.empty()) return 0.0;
  return static_cast<double>(total_wait_ns()) /
         (static_cast<double>(wall_ns) *
          static_cast<double>(per_worker.size()));
}

double ProfileReport::measured_parallel_fraction() const {
  double par = static_cast<double>(total_busy_ns());
  double ser = static_cast<double>(serial_ns());
  return par + ser > 0 ? par / (par + ser) : 0.0;
}

namespace {

double ms(i64 ns) { return static_cast<double>(ns) / 1e6; }

}  // namespace

std::string ProfileReport::to_text() const {
  std::ostringstream os;
  os << std::fixed;
  os << "parallel execution profile\n"
     << "  workers: " << workers << "  partitioned runs: " << runs
     << "  wall: " << std::setprecision(3) << ms(wall_ns) << " ms\n"
     << "  parallel work: " << std::setprecision(3) << ms(total_busy_ns())
     << " ms  serial (worker 0): " << ms(serial_ns())
     << " ms  barrier wait: " << ms(total_wait_ns()) << " ms\n"
     << "  utilization: " << std::setprecision(1) << avg_utilization() * 100
     << "% avg  load imbalance: " << std::setprecision(2) << load_imbalance()
     << "  barrier share: " << std::setprecision(1) << barrier_share() * 100
     << "%\n"
     << "  measured parallel fraction: " << std::setprecision(3)
     << measured_parallel_fraction();
  if (predicted_parallel_fraction >= 0) {
    os << "  (model predicted: " << std::setprecision(3)
       << predicted_parallel_fraction;
    if (predicted_speedup > 0)
      os << ", Amdahl speedup " << std::setprecision(2) << predicted_speedup
         << "x at " << workers << " threads";
    os << ")";
  }
  os << "\n";
  os << "  per worker:\n";
  for (size_t w = 0; w < per_worker.size(); ++w) {
    const WorkerProfile& p = per_worker[w];
    os << "    w" << w << ": busy " << std::setprecision(3) << ms(p.busy_ns)
       << " ms (" << std::setprecision(1)
       << utilization(static_cast<int>(w)) * 100 << "%)  wait "
       << std::setprecision(3) << ms(p.barrier_wait_ns) << " ms  chunks "
       << p.chunks << " (+" << p.empty_chunks << " empty)  instances "
       << p.instances << "\n";
  }
  if (!levels.empty()) {
    os << "  per doall level:\n";
    for (const LevelProfile& l : levels) {
      double mean = l.chunks > 0 && workers > 0
                        ? static_cast<double>(l.busy_ns) /
                              static_cast<double>(workers)
                        : 0.0;
      os << "    " << l.var << ": " << l.activations << " activations, "
         << l.chunks << " chunks, busy " << std::setprecision(3)
         << ms(l.busy_ns) << " ms, imbalance " << std::setprecision(2)
         << (mean > 0 ? static_cast<double>(l.max_worker_busy_ns) / mean
                      : 0.0)
         << "\n";
    }
  }
  return os.str();
}

std::string ProfileReport::to_json() const {
  std::ostringstream os;
  os << std::setprecision(17);
  os << "{\"workers\":" << workers << ",\"runs\":" << runs
     << ",\"wall_ns\":" << wall_ns << ",\"busy_ns\":" << total_busy_ns()
     << ",\"serial_ns\":" << serial_ns()
     << ",\"barrier_wait_ns\":" << total_wait_ns()
     << ",\"avg_utilization\":" << avg_utilization()
     << ",\"load_imbalance\":" << load_imbalance()
     << ",\"barrier_share\":" << barrier_share()
     << ",\"measured_parallel_fraction\":" << measured_parallel_fraction();
  if (predicted_parallel_fraction >= 0)
    os << ",\"predicted_parallel_fraction\":" << predicted_parallel_fraction
       << ",\"predicted_speedup\":" << predicted_speedup;
  os << ",\"per_worker\":[";
  for (size_t w = 0; w < per_worker.size(); ++w) {
    const WorkerProfile& p = per_worker[w];
    if (w) os << ",";
    os << "{\"worker\":" << w << ",\"busy_ns\":" << p.busy_ns
       << ",\"barrier_wait_ns\":" << p.barrier_wait_ns
       << ",\"chunks\":" << p.chunks
       << ",\"empty_chunks\":" << p.empty_chunks
       << ",\"instances\":" << p.instances
       << ",\"loop_iterations\":" << p.loop_iterations
       << ",\"utilization\":" << utilization(static_cast<int>(w)) << "}";
  }
  os << "],\"levels\":[";
  for (size_t i = 0; i < levels.size(); ++i) {
    const LevelProfile& l = levels[i];
    if (i) os << ",";
    os << "{\"var\":" << json_quote(l.var)
       << ",\"activations\":" << l.activations << ",\"chunks\":" << l.chunks
       << ",\"busy_ns\":" << l.busy_ns
       << ",\"max_worker_busy_ns\":" << l.max_worker_busy_ns << "}";
  }
  os << "]}";
  return os.str();
}

ExecProfiler& ExecProfiler::global() {
  static ExecProfiler p;
  return p;
}

void ExecProfiler::enable() {
  g_enabled_.store(true, std::memory_order_relaxed);
}

void ExecProfiler::disable() {
  g_enabled_.store(false, std::memory_order_relaxed);
}

void ExecProfiler::clear() {
  std::lock_guard<std::mutex> lk(mu_);
  reports_.clear();
}

void ExecProfiler::add_report(ProfileReport r) {
  std::lock_guard<std::mutex> lk(mu_);
  reports_.push_back(std::move(r));
}

size_t ExecProfiler::report_count() const {
  std::lock_guard<std::mutex> lk(mu_);
  return reports_.size();
}

std::vector<ProfileReport> ExecProfiler::reports() const {
  std::lock_guard<std::mutex> lk(mu_);
  return reports_;
}

ProfileReport ExecProfiler::merged() const {
  std::vector<ProfileReport> all = reports();
  ProfileReport out;
  if (all.empty()) return out;
  out.runs = 0;
  std::map<std::string, size_t> level_of;
  for (const ProfileReport& r : all) {
    out.workers = std::max(out.workers, r.workers);
    out.runs += r.runs;
    out.wall_ns += r.wall_ns;
    if (out.per_worker.size() < r.per_worker.size())
      out.per_worker.resize(r.per_worker.size());
    for (size_t w = 0; w < r.per_worker.size(); ++w) {
      const WorkerProfile& src = r.per_worker[w];
      WorkerProfile& dst = out.per_worker[w];
      dst.worker = static_cast<int>(w);
      dst.busy_ns += src.busy_ns;
      dst.barrier_wait_ns += src.barrier_wait_ns;
      dst.chunks += src.chunks;
      dst.empty_chunks += src.empty_chunks;
      dst.instances += src.instances;
      dst.loop_iterations += src.loop_iterations;
    }
    for (const LevelProfile& l : r.levels) {
      auto [it, fresh] = level_of.emplace(l.var, out.levels.size());
      if (fresh) out.levels.push_back(LevelProfile{l.var, 0, 0, 0, 0});
      LevelProfile& dst = out.levels[it->second];
      dst.activations += l.activations;
      dst.chunks += l.chunks;
      dst.busy_ns += l.busy_ns;
      // Summing per-run maxima keeps max/mean >= 1 across runs (an
      // upper bound on the busiest worker's aggregate share).
      dst.max_worker_busy_ns += l.max_worker_busy_ns;
    }
    // Keep the most recent prediction, if any run carried one.
    if (r.predicted_parallel_fraction >= 0) {
      out.predicted_parallel_fraction = r.predicted_parallel_fraction;
      out.predicted_speedup = r.predicted_speedup;
    }
  }
  return out;
}

}  // namespace inlt
