// Inline-buffer vector for hot-path coefficient storage.
//
// Fourier–Motzkin elimination churns through millions of short integer
// coefficient vectors (one per constraint, one entry per variable of
// the system). std::vector puts every one of them on the heap;
// SmallVec keeps vectors of up to N elements inline in the owning
// object and only spills to the heap beyond that. The API is the
// subset of std::vector the constraint code uses, with identical
// semantics (including lexicographic ordering and equality).
#pragma once

#include <algorithm>
#include <cstddef>
#include <cstring>
#include <initializer_list>
#include <type_traits>

namespace inlt {

template <typename T, std::size_t N>
class SmallVec {
  static_assert(std::is_trivially_copyable_v<T>,
                "SmallVec is restricted to trivially copyable elements");

 public:
  using value_type = T;
  using iterator = T*;
  using const_iterator = const T*;

  SmallVec() = default;
  SmallVec(std::size_t n, const T& value) { assign(n, value); }
  explicit SmallVec(std::size_t n) { assign(n, T()); }
  SmallVec(std::initializer_list<T> init) { assign_range(init.begin(), init.size()); }

  SmallVec(const SmallVec& other) { assign_range(other.data(), other.size_); }
  SmallVec(SmallVec&& other) noexcept { steal(other); }

  ~SmallVec() {
    if (is_heap()) delete[] heap_;
  }

  SmallVec& operator=(const SmallVec& other) {
    if (this != &other) assign_range(other.data(), other.size_);
    return *this;
  }
  SmallVec& operator=(SmallVec&& other) noexcept {
    if (this != &other) {
      if (is_heap()) delete[] heap_;
      steal(other);
    }
    return *this;
  }
  SmallVec& operator=(std::initializer_list<T> init) {
    assign_range(init.begin(), init.size());
    return *this;
  }

  std::size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }

  T* data() { return is_heap() ? heap_ : inline_; }
  const T* data() const { return is_heap() ? heap_ : inline_; }

  T& operator[](std::size_t i) { return data()[i]; }
  const T& operator[](std::size_t i) const { return data()[i]; }

  T& back() { return data()[size_ - 1]; }
  const T& back() const { return data()[size_ - 1]; }

  iterator begin() { return data(); }
  iterator end() { return data() + size_; }
  const_iterator begin() const { return data(); }
  const_iterator end() const { return data() + size_; }
  const_iterator cbegin() const { return begin(); }
  const_iterator cend() const { return end(); }

  void clear() { size_ = 0; }

  void reserve(std::size_t wanted) {
    if (wanted <= cap_) return;
    std::size_t cap = std::max(wanted, cap_ * 2);
    T* fresh = new T[cap];
    std::memcpy(fresh, data(), size_ * sizeof(T));
    if (is_heap()) delete[] heap_;
    heap_ = fresh;
    cap_ = cap;
  }

  void resize(std::size_t n, const T& value = T()) {
    reserve(n);
    for (std::size_t i = size_; i < n; ++i) data()[i] = value;
    size_ = n;
  }

  void push_back(const T& value) {
    reserve(size_ + 1);
    data()[size_++] = value;
  }

  void assign(std::size_t n, const T& value) {
    reserve(n);
    size_ = n;
    for (std::size_t i = 0; i < n; ++i) data()[i] = value;
  }

  friend bool operator==(const SmallVec& a, const SmallVec& b) {
    return a.size_ == b.size_ &&
           std::equal(a.begin(), a.end(), b.begin());
  }

  /// Lexicographic, matching std::vector's ordering.
  friend bool operator<(const SmallVec& a, const SmallVec& b) {
    return std::lexicographical_compare(a.begin(), a.end(), b.begin(),
                                        b.end());
  }

 private:
  bool is_heap() const { return cap_ > N; }

  void assign_range(const T* src, std::size_t n) {
    reserve(n);
    std::memcpy(data(), src, n * sizeof(T));
    size_ = n;
  }

  // Take other's contents; other is left empty (inline, size 0).
  void steal(SmallVec& other) {
    if (other.is_heap()) {
      heap_ = other.heap_;
      cap_ = other.cap_;
      size_ = other.size_;
      other.heap_ = nullptr;
      other.cap_ = N;
      other.size_ = 0;
    } else {
      cap_ = N;
      size_ = other.size_;
      std::memcpy(inline_, other.inline_, size_ * sizeof(T));
      other.size_ = 0;
    }
  }

  T inline_[N];
  T* heap_ = nullptr;
  std::size_t size_ = 0;
  std::size_t cap_ = N;
};

}  // namespace inlt
