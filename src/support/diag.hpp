// Structured diagnostics for the transformation pipeline.
//
// Every stage of the pipeline (layout, dependence analysis, matrix
// structure checks, legality, completion, code generation) reports
// problems as Diagnostic records instead of ad-hoc strings: a record
// names the pipeline stage, the statements, the array and the
// dependence involved, so drivers can render them as prose, as JSON,
// or group them programmatically. Exceptions thrown at the public
// boundary (DiagnosedTransformError) carry the records that produced
// them, so existing `catch (const TransformError&)` sites keep working
// while new callers can recover the structure.
#pragma once

#include <string>
#include <vector>

#include "support/check.hpp"
#include "support/json.hpp"

namespace inlt {

enum class Severity {
  kNote,
  kWarning,
  kError,
};

/// The stages of the transformation pipeline, in pipeline order.
enum class Stage {
  kParse,       ///< source text -> Program
  kLayout,      ///< Program -> IvLayout (§2)
  kDependence,  ///< dependence analysis (§3)
  kStructure,   ///< matrix block-structure / AST recovery checks (§4, Fig 6)
  kLegality,    ///< Definition 6 legality test
  kCompletion,  ///< §6 completion procedure
  kCodegen,     ///< §5 code generation
  kCli,         ///< command-line driver (bad invocation, missing file)
  kExec,        ///< execution engines (native-engine fallback to the VM)
};

const char* severity_name(Severity s);
const char* stage_name(Stage s);

/// One structured diagnostic. Identifier fields are optional; empty
/// string / -1 mean "not applicable".
struct Diagnostic {
  Severity severity = Severity::kError;
  Stage stage = Stage::kLegality;
  std::string message;   ///< human-readable description

  std::string src_stmt;  ///< label of the dependence source statement
  std::string dst_stmt;  ///< label of the dependence destination
  std::string array;     ///< array inducing the dependence
  std::string dep_kind;  ///< "flow" / "anti" / "output"
  int dep_index = -1;    ///< index into the DependenceSet, or -1
  std::string loop;      ///< loop variable involved, if any
  std::string stmt;      ///< single statement involved (non-dependence)
  /// Legality provenance: the transformed row (instance-vector
  /// position) at which the lexicographic walk decided this verdict,
  /// or -1 when not applicable (e.g. a zero projection decided only
  /// after every common row was consumed).
  int row = -1;

  /// "error[legality] flow S2 -> S1 on A: <message>".
  std::string render() const;

  /// One JSON object (no trailing newline).
  std::string to_json() const;
};

/// Collects diagnostics in report order; renders them with errors
/// first (stable within each severity).
class DiagnosticEngine {
 public:
  void report(Diagnostic d);

  const std::vector<Diagnostic>& all() const { return diags_; }
  bool empty() const { return diags_.empty(); }
  size_t size() const { return diags_.size(); }

  bool has_errors() const;
  size_t count(Severity s) const;

  /// Pointers into all(), errors first, then warnings, then notes;
  /// insertion order preserved within a severity.
  std::vector<const Diagnostic*> sorted() const;

  /// sorted(), one rendered line each.
  std::string render_all() const;

  /// JSON array of diagnostic objects, in sorted() order.
  std::string to_json() const;

  void clear() { diags_.clear(); }

 private:
  std::vector<Diagnostic> diags_;
};

/// A TransformError that carries the structured diagnostics it was
/// built from. Thrown by transform/ and codegen/ at their public
/// boundaries; `what()` stays a readable prose message so existing
/// catch sites are unaffected.
class DiagnosedTransformError : public TransformError {
 public:
  explicit DiagnosedTransformError(Diagnostic d);
  DiagnosedTransformError(const std::string& what,
                          std::vector<Diagnostic> diags);

  const std::vector<Diagnostic>& diagnostics() const { return diags_; }

 private:
  std::vector<Diagnostic> diags_;
};

/// Throw a DiagnosedTransformError whose what() is d.message.
[[noreturn]] void throw_diag(Diagnostic d);

}  // namespace inlt
