// Lightweight pipeline instrumentation: named counters and timers.
//
// The hot paths of the framework (Fourier–Motzkin elimination, the
// Omega test, legality checks, the session projection cache) bump
// counters here; code-generation stages record wall time. One global
// registry serves the whole process — increments are relaxed atomics,
// so instrumented code stays thread-safe and cheap — and the whole
// registry can be dumped as aligned text or JSON (`inltc --stats`).
//
// Counter references returned by `counter()` are stable for the life
// of the process; `reset()` zeroes values without invalidating them,
// so call sites may cache the reference in a function-local static.
#pragma once

#include <array>
#include <atomic>
#include <map>
#include <memory>
#include <mutex>
#include <string>

#include "support/checked_int.hpp"

namespace inlt {

/// Number of log₂ buckets in a histogram: bucket 0 holds values <= 0,
/// bucket b >= 1 holds values in [2^(b-1), 2^b - 1].
inline constexpr int kHistBuckets = 64;

/// Index of the bucket `value` falls into.
int hist_bucket(i64 value);

/// Smallest value of bucket `b` (0 for bucket 0).
i64 hist_bucket_lo(int b);

/// A log₂-bucketed histogram cell: sample counts per power-of-two
/// bucket plus exact count/sum for means. Returned by reference from
/// `Stats::histogram()` so hot paths can cache it and record with
/// relaxed atomics only.
class HistogramCell {
 public:
  void record(i64 value) {
    count_.fetch_add(1, std::memory_order_relaxed);
    sum_.fetch_add(value, std::memory_order_relaxed);
    buckets_[hist_bucket(value)].fetch_add(1, std::memory_order_relaxed);
  }

  i64 count() const { return count_.load(std::memory_order_relaxed); }
  i64 sum() const { return sum_.load(std::memory_order_relaxed); }
  i64 bucket(int b) const {
    return buckets_[b].load(std::memory_order_relaxed);
  }

  void reset() {
    count_.store(0, std::memory_order_relaxed);
    sum_.store(0, std::memory_order_relaxed);
    for (auto& b : buckets_) b.store(0, std::memory_order_relaxed);
  }

 private:
  std::atomic<i64> count_{0};
  std::atomic<i64> sum_{0};
  std::array<std::atomic<i64>, kHistBuckets> buckets_{};
};

/// Point-in-time copy of every counter, timer and histogram.
/// Subtracting two snapshots gives the deltas accumulated between
/// them — how the benchmarks attribute global counters to one
/// measured phase.
struct StatsSnapshot {
  struct TimerValue {
    i64 ns = 0;
    i64 count = 0;
  };
  struct HistogramValue {
    i64 count = 0;
    i64 sum = 0;
    std::array<i64, kHistBuckets> buckets{};

    double mean() const {
      return count ? static_cast<double>(sum) / static_cast<double>(count)
                   : 0.0;
    }
  };
  std::map<std::string, i64> counters;
  std::map<std::string, TimerValue> timers;
  std::map<std::string, HistogramValue> histograms;

  /// Value of a counter in this snapshot (0 if absent).
  i64 counter(const std::string& name) const;

  /// Per-key difference (this - base); keys absent from `base` count
  /// from zero.
  StatsSnapshot operator-(const StatsSnapshot& base) const;
};

class Stats {
 public:
  /// The process-wide registry.
  static Stats& global();

  /// Named counter; created zeroed on first use. The reference stays
  /// valid (and keeps its identity across reset()) forever.
  std::atomic<i64>& counter(const std::string& name);

  /// counter(name) += delta.
  void add(const std::string& name, i64 delta = 1);

  /// Current value of a counter (0 if never touched).
  i64 value(const std::string& name) const;

  /// Accumulate `ns` nanoseconds (and one invocation) on a timer.
  void add_time_ns(const std::string& name, i64 ns);

  /// Total nanoseconds recorded on a timer (0 if never touched).
  i64 time_ns(const std::string& name) const;

  /// Named log₂-bucketed histogram; created zeroed on first use. The
  /// reference stays valid forever (cache it on hot paths).
  HistogramCell& histogram(const std::string& name);

  /// histogram(name).record(value).
  void add_sample(const std::string& name, i64 value);

  /// Zero every counter and timer (references stay valid).
  void reset();

  /// Copy every current counter and timer value.
  StatsSnapshot snapshot() const;

  /// Aligned "name  value" lines: counters first, then timers (as
  /// milliseconds with invocation counts and mean per invocation),
  /// then histograms (count/mean plus the non-empty log₂ buckets).
  /// Zero entries included.
  std::string to_text() const;

  /// {"counters":{...},"timers":{name:{"ns":..,"count":..},...},
  ///  "histograms":{name:{"count":..,"sum":..,"buckets":{lo:n,...}}}}.
  std::string to_json() const;

  Stats() = default;
  Stats(const Stats&) = delete;
  Stats& operator=(const Stats&) = delete;

 private:
  struct Timer {
    std::atomic<i64> ns{0};
    std::atomic<i64> count{0};
  };
  // unique_ptr keeps addresses stable across map growth.
  mutable std::mutex mu_;
  std::map<std::string, std::unique_ptr<std::atomic<i64>>> counters_;
  std::map<std::string, std::unique_ptr<Timer>> timers_;
  std::map<std::string, std::unique_ptr<HistogramCell>> histograms_;
};

/// Adds the elapsed wall time to `Stats::global()` timer `name` on
/// destruction.
class ScopedTimer {
 public:
  explicit ScopedTimer(std::string name);
  ~ScopedTimer();
  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

 private:
  std::string name_;
  i64 start_ns_;
};

}  // namespace inlt
