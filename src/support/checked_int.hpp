// Overflow-checked arithmetic on int64.
//
// All exact math in the compiler path (instance vectors, dependence
// distances, transformation matrices, Fourier–Motzkin) runs on int64
// through these helpers. Loop-transformation systems are notorious for
// silent coefficient overflow during elimination; we throw instead.
#pragma once

#include <cstdint>
#include <cstdlib>

#include "support/check.hpp"

namespace inlt {

using i64 = std::int64_t;

/// a + b, throwing OverflowError on wrap.
inline i64 checked_add(i64 a, i64 b) {
  i64 r;
  if (__builtin_add_overflow(a, b, &r))
    throw OverflowError("int64 overflow in addition");
  return r;
}

/// a - b, throwing OverflowError on wrap.
inline i64 checked_sub(i64 a, i64 b) {
  i64 r;
  if (__builtin_sub_overflow(a, b, &r))
    throw OverflowError("int64 overflow in subtraction");
  return r;
}

/// a * b, throwing OverflowError on wrap.
inline i64 checked_mul(i64 a, i64 b) {
  i64 r;
  if (__builtin_mul_overflow(a, b, &r))
    throw OverflowError("int64 overflow in multiplication");
  return r;
}

/// -a, throwing OverflowError for INT64_MIN.
inline i64 checked_neg(i64 a) { return checked_sub(0, a); }

/// Nonnegative greatest common divisor; gcd(0,0) == 0.
inline i64 gcd(i64 a, i64 b) {
  if (a < 0) a = checked_neg(a);
  if (b < 0) b = checked_neg(b);
  while (b != 0) {
    i64 t = a % b;
    a = b;
    b = t;
  }
  return a;
}

/// Least common multiple (nonnegative); lcm(0,x) == 0.
inline i64 lcm(i64 a, i64 b) {
  if (a == 0 || b == 0) return 0;
  i64 g = gcd(a, b);
  return checked_mul(a / g, b < 0 ? -b : b);
}

/// Floor division (rounds toward -inf), b != 0.
inline i64 floor_div(i64 a, i64 b) {
  INLT_CHECK(b != 0);
  i64 q = a / b;
  if ((a % b != 0) && ((a < 0) != (b < 0))) --q;
  return q;
}

/// Ceiling division (rounds toward +inf), b != 0.
inline i64 ceil_div(i64 a, i64 b) {
  INLT_CHECK(b != 0);
  i64 q = a / b;
  if ((a % b != 0) && ((a < 0) == (b < 0))) ++q;
  return q;
}

/// Mathematical mod: result in [0, |b|).
inline i64 floor_mod(i64 a, i64 b) { return a - checked_mul(floor_div(a, b), b); }

}  // namespace inlt
