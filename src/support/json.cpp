#include "support/json.hpp"

#include <cstdio>

namespace inlt {

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string json_quote(const std::string& s) {
  return "\"" + json_escape(s) + "\"";
}

}  // namespace inlt
