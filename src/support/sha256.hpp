// SHA-256, self-contained.
//
// The native execution engine (exec/native.hpp) content-addresses
// compiled kernels: the cache key is the digest of the emitted C
// source plus the compiler identity and flags, so any change to the
// program, the emitter, or the toolchain produces a different key and
// stale shared objects can never be picked up. No external crypto
// dependency: the whole implementation lives in sha256.cpp.
#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <string_view>

namespace inlt {

/// Streaming SHA-256 (FIPS 180-4).
class Sha256 {
 public:
  Sha256();

  void update(const void* data, std::size_t len);
  void update(std::string_view s) { update(s.data(), s.size()); }

  /// Finalize and return the 32-byte digest. The object must not be
  /// updated afterwards.
  std::array<std::uint8_t, 32> digest();

 private:
  void process_block(const std::uint8_t* block);

  std::array<std::uint32_t, 8> state_;
  std::array<std::uint8_t, 64> buf_;
  std::size_t buf_len_ = 0;
  std::uint64_t total_len_ = 0;
};

/// Lowercase hex digest of one buffer.
std::string sha256_hex(std::string_view data);

}  // namespace inlt
