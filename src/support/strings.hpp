// Small string-formatting helpers shared across inlt modules.
#pragma once

#include <sstream>
#include <string>
#include <vector>

namespace inlt {

/// Join the string forms of a range with a separator.
template <typename Range>
std::string join(const Range& items, const std::string& sep) {
  std::ostringstream os;
  bool first = true;
  for (const auto& item : items) {
    if (!first) os << sep;
    first = false;
    os << item;
  }
  return os.str();
}

/// True if `s` starts with `prefix`.
inline bool starts_with(const std::string& s, const std::string& prefix) {
  return s.size() >= prefix.size() && s.compare(0, prefix.size(), prefix) == 0;
}

}  // namespace inlt
