#include "support/diag.hpp"

#include <sstream>

namespace inlt {

const char* severity_name(Severity s) {
  switch (s) {
    case Severity::kNote: return "note";
    case Severity::kWarning: return "warning";
    case Severity::kError: return "error";
  }
  return "unknown";
}

const char* stage_name(Stage s) {
  switch (s) {
    case Stage::kParse: return "parse";
    case Stage::kLayout: return "layout";
    case Stage::kDependence: return "dependence";
    case Stage::kStructure: return "structure";
    case Stage::kLegality: return "legality";
    case Stage::kCompletion: return "completion";
    case Stage::kCodegen: return "codegen";
    case Stage::kCli: return "cli";
    case Stage::kExec: return "exec";
  }
  return "unknown";
}

std::string Diagnostic::render() const {
  std::ostringstream os;
  os << severity_name(severity) << "[" << stage_name(stage) << "]";
  if (!dep_kind.empty()) os << " " << dep_kind;
  if (!src_stmt.empty() && !dst_stmt.empty())
    os << " " << src_stmt << " -> " << dst_stmt;
  else if (!stmt.empty())
    os << " " << stmt;
  if (!array.empty()) os << " on " << array;
  if (!loop.empty()) os << " loop " << loop;
  if (row >= 0) os << " row " << row;
  os << ": " << message;
  return os.str();
}

std::string Diagnostic::to_json() const {
  std::ostringstream os;
  os << "{\"severity\":\"" << severity_name(severity) << "\""
     << ",\"stage\":\"" << stage_name(stage) << "\"";
  if (!dep_kind.empty()) os << ",\"kind\":\"" << json_escape(dep_kind) << "\"";
  if (!src_stmt.empty()) os << ",\"src\":\"" << json_escape(src_stmt) << "\"";
  if (!dst_stmt.empty()) os << ",\"dst\":\"" << json_escape(dst_stmt) << "\"";
  if (!array.empty()) os << ",\"array\":\"" << json_escape(array) << "\"";
  if (dep_index >= 0) os << ",\"dep\":" << dep_index;
  if (row >= 0) os << ",\"row\":" << row;
  if (!loop.empty()) os << ",\"loop\":\"" << json_escape(loop) << "\"";
  if (!stmt.empty()) os << ",\"stmt\":\"" << json_escape(stmt) << "\"";
  os << ",\"message\":\"" << json_escape(message) << "\"}";
  return os.str();
}

void DiagnosticEngine::report(Diagnostic d) {
  diags_.push_back(std::move(d));
}

bool DiagnosticEngine::has_errors() const {
  return count(Severity::kError) > 0;
}

size_t DiagnosticEngine::count(Severity s) const {
  size_t n = 0;
  for (const Diagnostic& d : diags_)
    if (d.severity == s) ++n;
  return n;
}

std::vector<const Diagnostic*> DiagnosticEngine::sorted() const {
  std::vector<const Diagnostic*> out;
  out.reserve(diags_.size());
  for (Severity s :
       {Severity::kError, Severity::kWarning, Severity::kNote})
    for (const Diagnostic& d : diags_)
      if (d.severity == s) out.push_back(&d);
  return out;
}

std::string DiagnosticEngine::render_all() const {
  std::string out;
  for (const Diagnostic* d : sorted()) {
    out += d->render();
    out += "\n";
  }
  return out;
}

std::string DiagnosticEngine::to_json() const {
  std::string out = "[";
  bool first = true;
  for (const Diagnostic* d : sorted()) {
    if (!first) out += ",";
    first = false;
    out += d->to_json();
  }
  out += "]";
  return out;
}

DiagnosedTransformError::DiagnosedTransformError(Diagnostic d)
    : TransformError(d.message), diags_{std::move(d)} {}

DiagnosedTransformError::DiagnosedTransformError(
    const std::string& what, std::vector<Diagnostic> diags)
    : TransformError(what), diags_(std::move(diags)) {}

void throw_diag(Diagnostic d) { throw DiagnosedTransformError(std::move(d)); }

}  // namespace inlt
