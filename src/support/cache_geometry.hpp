// Shared cache geometry for every layer that reasons about lines.
//
// Three places model the memory hierarchy: the VM's CacheProbe
// (exec/interp.hpp) counts distinct lines at execution time, the
// static cost model (model/cost.hpp) estimates them per candidate, and
// the tile working-set model (model/tile_cost.hpp) sizes tile
// footprints against a capacity. They must agree on the geometry —
// a probe counting 64-byte lines against a model assuming 128-byte
// lines ranks candidates against a different machine than it measures.
// This header is the single definition all three default from.
#pragma once

#include "support/checked_int.hpp"

namespace inlt {

/// The modeled cache. Values are deliberately machine-independent
/// defaults (a generic 64-byte-line, 256 KiB cache), not probed from
/// the host: ranking verdicts and CI gates must not depend on the
/// runner.
struct CacheGeometry {
  /// Array elements (doubles) per cache line: 64 B line / 8 B element.
  /// Must be a power of two.
  i64 line_elems = 8;
  /// Modeled capacity in lines: 4096 × 64 B = 256 KiB. The tile-size
  /// search keeps per-tile footprints within this.
  i64 capacity_lines = 4096;
  /// log2 of the CacheProbe's direct-mapped tag table. At the default
  /// 2^20 entries the probe approximates distinct lines touched;
  /// shrunk (e.g. 9 bits = a 512-line cache), it approximates the
  /// miss count of a direct-mapped cache of that geometry.
  int probe_bucket_bits = 20;
};

/// Compile-time defaults, usable in default member initializers.
inline constexpr i64 kCacheLineElems = 8;
inline constexpr i64 kCacheCapacityLines = 4096;
inline constexpr int kCacheProbeBucketBits = 20;

}  // namespace inlt
