// inlt::trace — thread-aware, low-overhead span tracing.
//
// ScopedSpan is the instrumentation primitive: an RAII object carrying
// a static name, a category, and optional key/value args. Spans are
// buffered per thread and exported as Chrome trace-event JSON — one
// complete "X" event per span — loadable in chrome://tracing and
// Perfetto, plus an aggregated per-category summary (text or JSON) for
// quick "where did the time go" answers without a viewer.
//
// Overhead contract: tracing is disabled by default, and a disabled
// span's constructor is one relaxed atomic load (no clock read, no
// allocation, no lock) — hot paths may be instrumented unconditionally.
// When enabled, each completed span takes two steady_clock reads plus
// one push onto the calling thread's buffer under that buffer's
// (uncontended) mutex; arg strings are built only when the owning span
// is active, so callers may guard expensive arg construction with
// `span.active()`.
//
// Threads: each recording thread gets its own buffer and a small
// sequential tid, assigned on first use. Export merges all buffers;
// it may run concurrently with recording (each buffer is locked for
// the copy), though the natural pattern is record-then-export. The
// registry holds shared ownership of every buffer, so events recorded
// on long-lived threads the exporter never joins — the persistent
// exec WorkerPool above all — are collected at export time exactly
// like main-thread events (tests/support/test_trace.cpp and
// tests/exec/test_profile_exec.cpp pin this down).
#pragma once

#include <atomic>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "support/checked_int.hpp"

namespace inlt {

/// One key/value pair attached to a span. Values are either raw JSON
/// numbers or strings (escaped at export time).
struct TraceArg {
  const char* key = "";
  std::string value;
  bool is_string = false;
};

/// One buffered event. Spans are Chrome "X" (complete) events;
/// counters are "C" (counter) events whose args carry the sampled
/// values — Perfetto renders them as counter tracks.
struct TraceEvent {
  const char* name = "";  ///< static string — span names are literals
  const char* cat = "";   ///< static category ("session", "fm", ...)
  i64 start_ns = 0;       ///< steady-clock ns, relative to enable()
  i64 dur_ns = 0;         ///< span duration; 0 (unused) for counters
  int tid = 0;            ///< small sequential id, per recording thread
  char ph = 'X';          ///< Chrome phase: 'X' span, 'C' counter
  std::vector<TraceArg> args;
};

/// The process-wide trace collector.
class Tracer {
 public:
  static Tracer& global();

  /// Start collecting; resets the time origin (but keeps any buffered
  /// events — call clear() for a fresh trace).
  void enable();
  void disable();

  /// The hot-path gate: one relaxed atomic load.
  static bool enabled() {
    return g_enabled_.load(std::memory_order_relaxed);
  }

  /// Drop every buffered event (thread registrations survive).
  void clear();

  /// Total events buffered across all threads.
  size_t event_count() const;

  /// Merged copy of every buffered event, ordered by start time.
  std::vector<TraceEvent> events() const;

  /// {"traceEvents":[...]} — the Chrome trace-event format (complete
  /// "X" events; ts/dur in microseconds).
  std::string chrome_trace_json() const;

  /// Aggregated per-category (and per-name) table: span counts, total
  /// and mean wall time.
  std::string summary_text() const;

  /// Same aggregation as JSON:
  /// {"categories":{cat:{"count":..,"total_ns":..,"names":{...}}}}.
  std::string summary_json() const;

  /// Append one event to the calling thread's buffer. Normally called
  /// by ~ScopedSpan; public so tests and instant events can record
  /// directly.
  void record(TraceEvent e);

  /// Record a counter sample (Chrome "C" event) on the calling
  /// thread's track: `key` becomes the counter series, `value` the
  /// sampled value at the current time. No-op when disabled. `name`
  /// and `key` must be static strings.
  void counter(const char* name, const char* cat, const char* key,
               i64 value);

  /// Name the calling thread's track in the exported trace (a Chrome
  /// "thread_name" metadata event). Last call wins — the exec pool
  /// renames its persistent threads per run. Safe to call whether or
  /// not tracing is enabled; the name survives clear().
  void set_thread_name(const std::string& name);

  /// Steady-clock ns relative to the enable() epoch.
  i64 now_ns() const;

  Tracer(const Tracer&) = delete;
  Tracer& operator=(const Tracer&) = delete;

 private:
  Tracer() = default;

  struct ThreadBuffer {
    std::mutex mu;
    std::vector<TraceEvent> events;
    std::string name;  ///< thread track name ("" = unnamed)
    int tid = 0;
  };

  ThreadBuffer& local_buffer();

  inline static std::atomic<bool> g_enabled_{false};
  std::atomic<i64> epoch_ns_{0};
  mutable std::mutex mu_;  // guards buffers_ / next_tid_
  std::vector<std::shared_ptr<ThreadBuffer>> buffers_;
  int next_tid_ = 1;
};

/// RAII span: records one complete event on destruction when tracing
/// was enabled at construction. Cost when disabled: one relaxed load.
class ScopedSpan {
 public:
  ScopedSpan(const char* name, const char* cat)
      : active_(Tracer::enabled()), name_(name), cat_(cat) {
    if (active_) start_ns_ = Tracer::global().now_ns();
  }
  ~ScopedSpan() {
    if (active_) finish();
  }
  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

  /// True when this span will be recorded — guard expensive arg
  /// construction with it.
  bool active() const { return active_; }

  /// Attach args (no-ops when inactive). `key` must be a static string.
  void arg(const char* key, i64 v);
  void arg(const char* key, const std::string& v);
  void arg(const char* key, const char* v);
  void arg(const char* key, bool v);

 private:
  void finish();

  bool active_;
  const char* name_;
  const char* cat_;
  i64 start_ns_ = 0;
  std::vector<TraceArg> args_;
};

}  // namespace inlt
