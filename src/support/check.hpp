// Error handling primitives for inlt.
//
// The compiler path of inlt (dependence analysis, legality, code
// generation) must never produce silently wrong answers, so internal
// invariant violations throw rather than abort: a caller experimenting
// with transformations can catch `inlt::Error` and continue.
#pragma once

#include <stdexcept>
#include <string>

namespace inlt {

/// Base class for all errors raised by the inlt library.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

/// Raised when exact integer arithmetic would overflow int64.
class OverflowError : public Error {
 public:
  explicit OverflowError(const std::string& what) : Error(what) {}
};

/// Raised on malformed input programs (parser, builder misuse).
class InvalidProgramError : public Error {
 public:
  explicit InvalidProgramError(const std::string& what) : Error(what) {}
};

/// Raised when a transformation matrix fails a structural requirement
/// (block structure, nonsingularity, legality preconditions).
class TransformError : public Error {
 public:
  explicit TransformError(const std::string& what) : Error(what) {}
};

namespace detail {
[[noreturn]] void check_failed(const char* expr, const char* file, int line,
                               const std::string& msg);
}  // namespace detail

}  // namespace inlt

/// Invariant check that is always on (the library is a compiler: being
/// right matters more than the nanoseconds the branch costs).
#define INLT_CHECK(expr)                                              \
  do {                                                                \
    if (!(expr)) {                                                    \
      ::inlt::detail::check_failed(#expr, __FILE__, __LINE__, "");    \
    }                                                                 \
  } while (0)

#define INLT_CHECK_MSG(expr, msg)                                     \
  do {                                                                \
    if (!(expr)) {                                                    \
      ::inlt::detail::check_failed(#expr, __FILE__, __LINE__, (msg)); \
    }                                                                 \
  } while (0)
