#include "support/stats.hpp"

#include <bit>
#include <chrono>
#include <iomanip>
#include <sstream>

#include "support/json.hpp"

namespace inlt {

namespace {

i64 now_ns() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

}  // namespace

int hist_bucket(i64 value) {
  if (value <= 0) return 0;
  int b = std::bit_width(static_cast<std::uint64_t>(value));
  return b < kHistBuckets ? b : kHistBuckets - 1;
}

i64 hist_bucket_lo(int b) {
  return b <= 0 ? 0 : static_cast<i64>(1) << (b - 1);
}

Stats& Stats::global() {
  static Stats s;
  return s;
}

std::atomic<i64>& Stats::counter(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = counters_[name];
  if (!slot) slot = std::make_unique<std::atomic<i64>>(0);
  return *slot;
}

void Stats::add(const std::string& name, i64 delta) {
  counter(name).fetch_add(delta, std::memory_order_relaxed);
}

i64 Stats::value(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = counters_.find(name);
  return it == counters_.end()
             ? 0
             : it->second->load(std::memory_order_relaxed);
}

void Stats::add_time_ns(const std::string& name, i64 ns) {
  Timer* t;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto& slot = timers_[name];
    if (!slot) slot = std::make_unique<Timer>();
    t = slot.get();
  }
  t->ns.fetch_add(ns, std::memory_order_relaxed);
  t->count.fetch_add(1, std::memory_order_relaxed);
}

i64 Stats::time_ns(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = timers_.find(name);
  return it == timers_.end() ? 0
                             : it->second->ns.load(std::memory_order_relaxed);
}

HistogramCell& Stats::histogram(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = histograms_[name];
  if (!slot) slot = std::make_unique<HistogramCell>();
  return *slot;
}

void Stats::add_sample(const std::string& name, i64 value) {
  histogram(name).record(value);
}

i64 StatsSnapshot::counter(const std::string& name) const {
  auto it = counters.find(name);
  return it == counters.end() ? 0 : it->second;
}

StatsSnapshot StatsSnapshot::operator-(const StatsSnapshot& base) const {
  StatsSnapshot d = *this;
  for (auto& [name, v] : d.counters) {
    auto it = base.counters.find(name);
    if (it != base.counters.end()) v -= it->second;
  }
  for (auto& [name, t] : d.timers) {
    auto it = base.timers.find(name);
    if (it != base.timers.end()) {
      t.ns -= it->second.ns;
      t.count -= it->second.count;
    }
  }
  for (auto& [name, h] : d.histograms) {
    auto it = base.histograms.find(name);
    if (it != base.histograms.end()) {
      h.count -= it->second.count;
      h.sum -= it->second.sum;
      for (int b = 0; b < kHistBuckets; ++b)
        h.buckets[b] -= it->second.buckets[b];
    }
  }
  return d;
}

StatsSnapshot Stats::snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  StatsSnapshot s;
  for (const auto& [name, c] : counters_)
    s.counters[name] = c->load(std::memory_order_relaxed);
  for (const auto& [name, t] : timers_)
    s.timers[name] = StatsSnapshot::TimerValue{
        t->ns.load(std::memory_order_relaxed),
        t->count.load(std::memory_order_relaxed)};
  for (const auto& [name, h] : histograms_) {
    StatsSnapshot::HistogramValue v;
    v.count = h->count();
    v.sum = h->sum();
    for (int b = 0; b < kHistBuckets; ++b) v.buckets[b] = h->bucket(b);
    s.histograms[name] = v;
  }
  return s;
}

void Stats::reset() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [name, c] : counters_) c->store(0, std::memory_order_relaxed);
  for (auto& [name, t] : timers_) {
    t->ns.store(0, std::memory_order_relaxed);
    t->count.store(0, std::memory_order_relaxed);
  }
  for (auto& [name, h] : histograms_) h->reset();
}

std::string Stats::to_text() const {
  std::lock_guard<std::mutex> lock(mu_);
  size_t width = 0;
  for (const auto& [name, c] : counters_) width = std::max(width, name.size());
  for (const auto& [name, t] : timers_) width = std::max(width, name.size());
  for (const auto& [name, h] : histograms_)
    width = std::max(width, name.size());
  std::ostringstream os;
  for (const auto& [name, c] : counters_)
    os << std::left << std::setw(static_cast<int>(width) + 2) << name
       << c->load(std::memory_order_relaxed) << "\n";
  for (const auto& [name, t] : timers_) {
    i64 ns = t->ns.load(std::memory_order_relaxed);
    i64 calls = t->count.load(std::memory_order_relaxed);
    os << std::left << std::setw(static_cast<int>(width) + 2) << name
       << std::fixed << std::setprecision(3)
       << static_cast<double>(ns) / 1e6 << " ms (" << calls << " calls";
    if (calls > 0)
      os << ", " << std::setprecision(1)
         << static_cast<double>(ns) / 1e3 / static_cast<double>(calls)
         << " us/call";
    os << ")\n";
  }
  for (const auto& [name, h] : histograms_) {
    i64 count = h->count();
    os << std::left << std::setw(static_cast<int>(width) + 2) << name
       << "n=" << count;
    if (count > 0)
      os << " mean=" << std::fixed << std::setprecision(1)
         << static_cast<double>(h->sum()) / static_cast<double>(count);
    for (int b = 0; b < kHistBuckets; ++b) {
      i64 n = h->bucket(b);
      if (n > 0) os << " " << hist_bucket_lo(b) << ":" << n;
    }
    os << "\n";
  }
  return os.str();
}

std::string Stats::to_json() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::ostringstream os;
  os << "{\"counters\":{";
  bool first = true;
  for (const auto& [name, c] : counters_) {
    if (!first) os << ",";
    first = false;
    os << "\"" << json_escape(name)
       << "\":" << c->load(std::memory_order_relaxed);
  }
  os << "},\"timers\":{";
  first = true;
  for (const auto& [name, t] : timers_) {
    if (!first) os << ",";
    first = false;
    os << "\"" << json_escape(name)
       << "\":{\"ns\":" << t->ns.load(std::memory_order_relaxed)
       << ",\"count\":" << t->count.load(std::memory_order_relaxed) << "}";
  }
  os << "},\"histograms\":{";
  first = true;
  for (const auto& [name, h] : histograms_) {
    if (!first) os << ",";
    first = false;
    os << "\"" << json_escape(name) << "\":{\"count\":" << h->count()
       << ",\"sum\":" << h->sum() << ",\"buckets\":{";
    bool bfirst = true;
    for (int b = 0; b < kHistBuckets; ++b) {
      i64 n = h->bucket(b);
      if (n == 0) continue;
      if (!bfirst) os << ",";
      bfirst = false;
      os << "\"" << hist_bucket_lo(b) << "\":" << n;
    }
    os << "}}";
  }
  os << "}}";
  return os.str();
}

ScopedTimer::ScopedTimer(std::string name)
    : name_(std::move(name)), start_ns_(now_ns()) {}

ScopedTimer::~ScopedTimer() {
  Stats::global().add_time_ns(name_, now_ns() - start_ns_);
}

}  // namespace inlt
