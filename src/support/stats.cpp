#include "support/stats.hpp"

#include <chrono>
#include <iomanip>
#include <sstream>

#include "support/diag.hpp"

namespace inlt {

namespace {

i64 now_ns() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

}  // namespace

Stats& Stats::global() {
  static Stats s;
  return s;
}

std::atomic<i64>& Stats::counter(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = counters_[name];
  if (!slot) slot = std::make_unique<std::atomic<i64>>(0);
  return *slot;
}

void Stats::add(const std::string& name, i64 delta) {
  counter(name).fetch_add(delta, std::memory_order_relaxed);
}

i64 Stats::value(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = counters_.find(name);
  return it == counters_.end()
             ? 0
             : it->second->load(std::memory_order_relaxed);
}

void Stats::add_time_ns(const std::string& name, i64 ns) {
  Timer* t;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto& slot = timers_[name];
    if (!slot) slot = std::make_unique<Timer>();
    t = slot.get();
  }
  t->ns.fetch_add(ns, std::memory_order_relaxed);
  t->count.fetch_add(1, std::memory_order_relaxed);
}

i64 Stats::time_ns(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = timers_.find(name);
  return it == timers_.end() ? 0
                             : it->second->ns.load(std::memory_order_relaxed);
}

i64 StatsSnapshot::counter(const std::string& name) const {
  auto it = counters.find(name);
  return it == counters.end() ? 0 : it->second;
}

StatsSnapshot StatsSnapshot::operator-(const StatsSnapshot& base) const {
  StatsSnapshot d = *this;
  for (auto& [name, v] : d.counters) {
    auto it = base.counters.find(name);
    if (it != base.counters.end()) v -= it->second;
  }
  for (auto& [name, t] : d.timers) {
    auto it = base.timers.find(name);
    if (it != base.timers.end()) {
      t.ns -= it->second.ns;
      t.count -= it->second.count;
    }
  }
  return d;
}

StatsSnapshot Stats::snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  StatsSnapshot s;
  for (const auto& [name, c] : counters_)
    s.counters[name] = c->load(std::memory_order_relaxed);
  for (const auto& [name, t] : timers_)
    s.timers[name] = StatsSnapshot::TimerValue{
        t->ns.load(std::memory_order_relaxed),
        t->count.load(std::memory_order_relaxed)};
  return s;
}

void Stats::reset() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [name, c] : counters_) c->store(0, std::memory_order_relaxed);
  for (auto& [name, t] : timers_) {
    t->ns.store(0, std::memory_order_relaxed);
    t->count.store(0, std::memory_order_relaxed);
  }
}

std::string Stats::to_text() const {
  std::lock_guard<std::mutex> lock(mu_);
  size_t width = 0;
  for (const auto& [name, c] : counters_) width = std::max(width, name.size());
  for (const auto& [name, t] : timers_) width = std::max(width, name.size());
  std::ostringstream os;
  for (const auto& [name, c] : counters_)
    os << std::left << std::setw(static_cast<int>(width) + 2) << name
       << c->load(std::memory_order_relaxed) << "\n";
  for (const auto& [name, t] : timers_) {
    double ms =
        static_cast<double>(t->ns.load(std::memory_order_relaxed)) / 1e6;
    os << std::left << std::setw(static_cast<int>(width) + 2) << name
       << std::fixed << std::setprecision(3) << ms << " ms ("
       << t->count.load(std::memory_order_relaxed) << " calls)\n";
  }
  return os.str();
}

std::string Stats::to_json() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::ostringstream os;
  os << "{\"counters\":{";
  bool first = true;
  for (const auto& [name, c] : counters_) {
    if (!first) os << ",";
    first = false;
    os << "\"" << json_escape(name)
       << "\":" << c->load(std::memory_order_relaxed);
  }
  os << "},\"timers\":{";
  first = true;
  for (const auto& [name, t] : timers_) {
    if (!first) os << ",";
    first = false;
    os << "\"" << json_escape(name)
       << "\":{\"ns\":" << t->ns.load(std::memory_order_relaxed)
       << ",\"count\":" << t->count.load(std::memory_order_relaxed) << "}";
  }
  os << "}}";
  return os.str();
}

ScopedTimer::ScopedTimer(std::string name)
    : name_(std::move(name)), start_ns_(now_ns()) {}

ScopedTimer::~ScopedTimer() {
  Stats::global().add_time_ns(name_, now_ns() - start_ns_);
}

}  // namespace inlt
