#include "support/check.hpp"

#include <sstream>

namespace inlt::detail {

void check_failed(const char* expr, const char* file, int line,
                  const std::string& msg) {
  std::ostringstream os;
  os << "inlt internal check failed: " << expr << " at " << file << ":"
     << line;
  if (!msg.empty()) os << " — " << msg;
  throw Error(os.str());
}

}  // namespace inlt::detail
