// Shared JSON string escaping.
//
// Every JSON emitter in the framework — Diagnostic::to_json,
// Stats::to_json, the Chrome trace exporter, the bench reports — must
// escape strings identically, so the one implementation lives here.
// Escapes the two mandatory characters (quote, backslash), the common
// whitespace controls as their short forms, and every other control
// character (< 0x20) as \u00XX. Non-ASCII bytes pass through
// untouched (JSON is UTF-8).
#pragma once

#include <string>

namespace inlt {

std::string json_escape(const std::string& s);

/// `"escaped"` — the escaped string wrapped in quotes.
std::string json_quote(const std::string& s);

}  // namespace inlt
