// C2 — §1's motivating claim: "All six permutations of these three
// loops compute the same result, but their performance, even on
// sequential machines, can be quite different."
//
// One series per loop ordering, swept over matrix size. EXPERIMENTS.md
// records the measured shape (right-looking/left-looking column forms
// vs row-oriented forms).
#include <benchmark/benchmark.h>

#include "kernels/cholesky.hpp"

namespace {

using namespace inlt::kernels;

void BM_Cholesky(benchmark::State& state) {
  auto variant = cholesky_variants()[static_cast<size_t>(state.range(0))];
  std::size_t n = static_cast<std::size_t>(state.range(1));
  Matrix input = make_spd(n, 42);
  for (auto _ : state) {
    Matrix a = input;
    variant.fn(a, n);
    benchmark::DoNotOptimize(a.data());
    benchmark::ClobberMemory();
  }
  state.SetLabel(variant.name);
  // Cholesky is n^3/3 flops (multiply-add counted as 2).
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(n) * n * n / 3);
}

void Chol_Args(benchmark::internal::Benchmark* b) {
  for (int v = 0; v < 6; ++v)
    for (int n : {64, 128, 256, 512}) b->Args({v, n});
}

BENCHMARK(BM_Cholesky)->Apply(Chol_Args)->Unit(benchmark::kMicrosecond);

}  // namespace

BENCHMARK_MAIN();
