// C7 — interpreter fidelity overhead: how much slower the IR
// interpreter (the vehicle for semantic verification of every
// transformation in the test suite) is than native code on the same
// computation, and the cost of running generated (guarded) code vs the
// source form.
#include <benchmark/benchmark.h>

#include "codegen/generate.hpp"
#include "exec/interp.hpp"
#include "ir/gallery.hpp"
#include "kernels/cholesky.hpp"
#include "transform/completion.hpp"

namespace {

using namespace inlt;

void BM_InterpCholesky(benchmark::State& state) {
  i64 n = state.range(0);
  Program p = gallery::cholesky();
  Memory proto;
  declare_arrays(p, {{"N", n}}, proto);
  fill_spd(proto, 3);
  for (auto _ : state) {
    Memory mem = proto;
    InterpStats st = interpret(p, {{"N", n}}, mem);
    benchmark::DoNotOptimize(st.instances);
  }
}
BENCHMARK(BM_InterpCholesky)->Arg(16)->Arg(32)->Arg(64)->Unit(
    benchmark::kMicrosecond);

void BM_InterpCholeskyTransformed(benchmark::State& state) {
  // The generated left-looking form: guards and cover bounds add
  // interpretive overhead; this quantifies it.
  i64 n = state.range(0);
  Program p = gallery::cholesky();
  IvLayout layout(p);
  DependenceSet deps = analyze_dependences(layout);
  IntVec first(7, 0);
  first[layout.loop_position("L")] = 1;
  IntMat m = complete_transformation(layout, deps, {first}).matrix;
  Program t = generate_code(layout, deps, m).program;
  Memory proto;
  declare_arrays(p, {{"N", n}}, proto);
  fill_spd(proto, 3);
  for (auto _ : state) {
    Memory mem = proto;
    InterpStats st = interpret(t, {{"N", n}}, mem);
    benchmark::DoNotOptimize(st.instances);
  }
}
BENCHMARK(BM_InterpCholeskyTransformed)->Arg(16)->Arg(32)->Arg(64)->Unit(
    benchmark::kMicrosecond);

void BM_NativeCholeskyReference(benchmark::State& state) {
  // Same computation in native C++ (kij form) for the overhead ratio.
  std::size_t n = static_cast<std::size_t>(state.range(0));
  kernels::Matrix input = kernels::make_spd(n, 3);
  for (auto _ : state) {
    kernels::Matrix a = input;
    kernels::cholesky_kij(a, n);
    benchmark::DoNotOptimize(a.data());
  }
}
BENCHMARK(BM_NativeCholeskyReference)->Arg(16)->Arg(32)->Arg(64)->Unit(
    benchmark::kMicrosecond);

}  // namespace

BENCHMARK_MAIN();
