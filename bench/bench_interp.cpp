// Execution-engine throughput: the compiled bytecode VM vs. the
// recursive AST walker on the same programs and inputs, across the
// kernels semantic verification actually runs — Cholesky, LU, a 2-D
// stencil, and the skewed (wavefront) form of that stencil, at several
// problem sizes.
//
// Each measurement times `interpret()` end to end (the VM side
// includes compilation), on a fresh copy of identically filled memory,
// so the ratio is exactly what a verification sweep sees. Emits
// BENCH_interp.json (override with --out=PATH). Unknown --benchmark_*
// flags are accepted and ignored so the binary can run under the same
// harness invocation as the google-benchmark suites.
#include <chrono>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "codegen/generate.hpp"
#include "exec/interp.hpp"
#include "ir/gallery.hpp"
#include "ir/parser.hpp"
#include "transform/transforms.hpp"

namespace {

using namespace inlt;

double now_s() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

Program stencil() {
  return parse_program(R"(
param N
do I = 1, N
  do J = 1, N
    S1: U(I, J) = U(I - 1, J) + U(I, J - 1)
  end
end
)");
}

Program skewed_wavefront() {
  // The classic transformed shape: stencil with J skewed by I — cover
  // bounds and a wavefront traversal, the generated-code case.
  Program p = stencil();
  IvLayout layout(p);
  DependenceSet deps = analyze_dependences(layout);
  return generate_code(layout, deps, loop_skew(layout, "J", "I", 1)).program;
}

struct Kernel {
  std::string name;
  Program (*make)();
};

struct EngineRun {
  double seconds = 0;  // total measured interpret() time
  i64 runs = 0;
  i64 instances = 0;   // per run
  double ips() const {
    return seconds > 0 ? static_cast<double>(instances) * runs / seconds : 0;
  }
};

// Time interpret() on copies of `proto` until the budget is spent
// (min 3 timed runs, one untimed warmup). Memory copies stay outside
// the timer.
EngineRun measure(const Program& p, const std::map<std::string, i64>& params,
                  const Memory& proto, ExecEngine engine, double budget_s) {
  InterpOptions opts;
  opts.engine = engine;
  EngineRun er;
  {
    Memory warm = proto;
    er.instances = interpret(p, params, warm, opts).instances;
  }
  for (;;) {
    Memory mem = proto;
    double t0 = now_s();
    interpret(p, params, mem, opts);
    er.seconds += now_s() - t0;
    er.runs += 1;
    if (er.seconds >= budget_s && er.runs >= 3) break;
  }
  return er;
}

void emit_engine(std::ostream& os, const char* name, const EngineRun& er) {
  os << "\"" << name << "\":{"
     << "\"seconds\":" << er.seconds << ",\"runs\":" << er.runs
     << ",\"instances\":" << er.instances
     << ",\"instances_per_second\":" << er.ips() << "}";
}

}  // namespace

int main(int argc, char** argv) {
  double budget_s = 0.25;
  std::string out_path = "BENCH_interp.json";
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--out=", 0) == 0) {
      out_path = arg.substr(6);
    } else if (arg.rfind("--benchmark_min_time=", 0) == 0) {
      double v = std::atof(arg.c_str() + std::strlen("--benchmark_min_time="));
      if (v > 0) budget_s = arg.back() == 'x' ? std::min(0.25, 0.05 * v) : v;
    }
    // Other --benchmark_* flags: accepted, ignored.
  }

  const std::vector<Kernel> kernels = {
      {"cholesky", &gallery::cholesky},
      {"lu", &gallery::lu},
      {"stencil", &stencil},
      {"skewed_wavefront", &skewed_wavefront},
  };
  const std::vector<i64> sizes = {16, 32, 64, 96};

  std::ostringstream js;
  js << "{\"benchmark\":\"bench_interp\",\"kernels\":[";
  for (size_t k = 0; k < kernels.size(); ++k) {
    Program p = kernels[k].make();
    if (k) js << ",";
    js << "{\"name\":\"" << kernels[k].name << "\",\"sizes\":[";
    double largest_speedup = 0;
    for (size_t s = 0; s < sizes.size(); ++s) {
      std::map<std::string, i64> params{{"N", sizes[s]}};
      Memory proto;
      declare_arrays(p, params, proto);
      fill_spd(proto, 3);

      EngineRun walker =
          measure(p, params, proto, ExecEngine::kAstWalker, budget_s);
      EngineRun vm = measure(p, params, proto, ExecEngine::kVm, budget_s);
      double speedup = walker.ips() > 0 ? vm.ips() / walker.ips() : 0;
      largest_speedup = speedup;  // sizes ascend; last one wins

      std::printf("%-18s N=%3lld %10lld inst | walker %12.0f inst/s | "
                  "vm %12.0f inst/s | %6.2fx\n",
                  kernels[k].name.c_str(), static_cast<long long>(sizes[s]),
                  static_cast<long long>(vm.instances), walker.ips(),
                  vm.ips(), speedup);

      if (s) js << ",";
      js << "{\"n\":" << sizes[s] << ",";
      emit_engine(js, "walker", walker);
      js << ",";
      emit_engine(js, "vm", vm);
      js << ",\"speedup\":" << speedup << "}";
    }
    js << "],\"speedup_at_largest\":" << largest_speedup << "}";
  }
  js << "]}\n";

  std::ofstream out(out_path);
  out << js.str();
  std::printf("wrote %s\n", out_path.c_str());
  return 0;
}
