// Execution-engine throughput: the compiled bytecode VM vs. the
// recursive AST walker vs. the native (C-compiled) engine on the same
// programs and inputs, across the kernels semantic verification
// actually runs — Cholesky, LU, a 2-D stencil, and the skewed
// (wavefront) form of that stencil, at several problem sizes.
//
// Each measurement times `interpret()` end to end (the VM side
// includes bytecode compilation; the native side runs after one
// untimed warmup, so its timed runs hit the in-process kernel cache —
// exactly what a verification sweep over many seeds sees). Emits
// BENCH_interp.json (override with --out=PATH) and, when a C compiler
// is available, BENCH_native.json (--native-out=PATH) with the
// machine-independent facts the regression gate wants: native results
// bit-identical to the VM on every kernel and size, zero recompiles on
// a second (disk-cached) pass, and the geomean native-vs-VM throughput
// ratio at the largest size. Without a compiler the native report
// records {"unavailable": true} and the gates skip. Unknown
// --benchmark_* flags are accepted and ignored so the binary can run
// under the same harness invocation as the google-benchmark suites.
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "codegen/generate.hpp"
#include "exec/interp.hpp"
#include "exec/native.hpp"
#include "ir/gallery.hpp"
#include "ir/parser.hpp"
#include "support/stats.hpp"
#include "transform/transforms.hpp"

namespace {

using namespace inlt;

double now_s() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

Program stencil() {
  return parse_program(R"(
param N
do I = 1, N
  do J = 1, N
    S1: U(I, J) = U(I - 1, J) + U(I, J - 1)
  end
end
)");
}

Program skewed_wavefront() {
  // The classic transformed shape: stencil with J skewed by I — cover
  // bounds and a wavefront traversal, the generated-code case.
  Program p = stencil();
  IvLayout layout(p);
  DependenceSet deps = analyze_dependences(layout);
  return generate_code(layout, deps, loop_skew(layout, "J", "I", 1)).program;
}

struct Kernel {
  std::string name;
  Program (*make)();
};

struct EngineRun {
  double seconds = 0;  // total measured interpret() time
  i64 runs = 0;
  i64 instances = 0;   // per run
  double ips() const {
    return seconds > 0 ? static_cast<double>(instances) * runs / seconds : 0;
  }
};

// Time interpret() on copies of `proto` until the budget is spent
// (min 3 timed runs, one untimed warmup — for the native engine the
// warmup also absorbs the one-time C compile). Memory copies stay
// outside the timer.
EngineRun measure(const Program& p, const std::map<std::string, i64>& params,
                  const Memory& proto, ExecEngine engine, double budget_s) {
  InterpOptions opts;
  opts.engine = engine;
  EngineRun er;
  {
    Memory warm = proto;
    er.instances = interpret(p, params, warm, opts).instances;
  }
  for (;;) {
    Memory mem = proto;
    double t0 = now_s();
    interpret(p, params, mem, opts);
    er.seconds += now_s() - t0;
    er.runs += 1;
    if (er.seconds >= budget_s && er.runs >= 3) break;
  }
  return er;
}

bool bit_identical(const Memory& a, const Memory& b) {
  if (a.arrays().size() != b.arrays().size()) return false;
  for (const auto& [name, arr] : a.arrays()) {
    if (!b.has(name)) return false;
    const DenseArray& other = b.at(name);
    if (arr.data().size() != other.data().size()) return false;
    if (std::memcmp(arr.data().data(), other.data().data(),
                    arr.data().size() * sizeof(double)) != 0)
      return false;
  }
  return true;
}

void emit_engine(std::ostream& os, const char* name, const EngineRun& er) {
  os << "\"" << name << "\":{"
     << "\"seconds\":" << er.seconds << ",\"runs\":" << er.runs
     << ",\"instances\":" << er.instances
     << ",\"instances_per_second\":" << er.ips() << "}";
}

}  // namespace

int main(int argc, char** argv) {
  double budget_s = 0.25;
  std::string out_path = "BENCH_interp.json";
  std::string native_out_path = "BENCH_native.json";
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--out=", 0) == 0) {
      out_path = arg.substr(6);
    } else if (arg.rfind("--native-out=", 0) == 0) {
      native_out_path = arg.substr(13);
    } else if (arg.rfind("--benchmark_min_time=", 0) == 0) {
      double v = std::atof(arg.c_str() + std::strlen("--benchmark_min_time="));
      if (v > 0) budget_s = arg.back() == 'x' ? std::min(0.25, 0.05 * v) : v;
    }
    // Other --benchmark_* flags: accepted, ignored.
  }

  std::string native_why;
  const bool have_native = native_available(&native_why);
  if (!have_native)
    std::printf("native engine unavailable (%s); VM/walker columns only\n",
                native_why.c_str());

  const std::vector<Kernel> kernels = {
      {"cholesky", &gallery::cholesky},
      {"lu", &gallery::lu},
      {"stencil", &stencil},
      {"skewed_wavefront", &skewed_wavefront},
  };
  const std::vector<i64> sizes = {16, 32, 64, 96};

  bool all_bit_identical = true;
  double log_ratio_sum = 0;  // geomean accumulator at the largest size
  int log_ratio_count = 0;

  std::ostringstream js;
  std::ostringstream njs;
  js << "{\"benchmark\":\"bench_interp\",\"kernels\":[";
  njs << "{\"benchmark\":\"bench_native\",\"unavailable\":"
      << (have_native ? "false" : "true") << ",\"compiler\":\""
      << (have_native ? native_compiler() : std::string()) << "\",\"kernels\":[";
  for (size_t k = 0; k < kernels.size(); ++k) {
    Program p = kernels[k].make();
    if (k) {
      js << ",";
      njs << ",";
    }
    js << "{\"name\":\"" << kernels[k].name << "\",\"sizes\":[";
    njs << "{\"name\":\"" << kernels[k].name << "\",\"sizes\":[";
    double largest_speedup = 0;
    double largest_native_vs_vm = 0;
    for (size_t s = 0; s < sizes.size(); ++s) {
      std::map<std::string, i64> params{{"N", sizes[s]}};
      Memory proto;
      declare_arrays(p, params, proto);
      fill_spd(proto, 3);

      EngineRun walker =
          measure(p, params, proto, ExecEngine::kAstWalker, budget_s);
      EngineRun vm = measure(p, params, proto, ExecEngine::kVm, budget_s);
      double speedup = walker.ips() > 0 ? vm.ips() / walker.ips() : 0;
      largest_speedup = speedup;  // sizes ascend; last one wins

      EngineRun native;
      double native_vs_vm = 0;
      bool identical = true;
      if (have_native) {
        native = measure(p, params, proto, ExecEngine::kNative, budget_s);
        native_vs_vm = vm.ips() > 0 ? native.ips() / vm.ips() : 0;
        largest_native_vs_vm = native_vs_vm;
        Memory vm_mem = proto;
        Memory native_mem = proto;
        InterpOptions vopts;
        vopts.engine = ExecEngine::kVm;
        interpret(p, params, vm_mem, vopts);
        InterpOptions nopts;
        nopts.engine = ExecEngine::kNative;
        interpret(p, params, native_mem, nopts);
        identical = bit_identical(vm_mem, native_mem);
        all_bit_identical = all_bit_identical && identical;
      }

      if (have_native)
        std::printf("%-18s N=%3lld %10lld inst | walker %11.0f i/s | "
                    "vm %11.0f i/s (%5.2fx) | native %11.0f i/s (%5.2fx vm)%s\n",
                    kernels[k].name.c_str(), static_cast<long long>(sizes[s]),
                    static_cast<long long>(vm.instances), walker.ips(),
                    vm.ips(), speedup, native.ips(), native_vs_vm,
                    identical ? "" : "  BIT MISMATCH");
      else
        std::printf("%-18s N=%3lld %10lld inst | walker %12.0f inst/s | "
                    "vm %12.0f inst/s | %6.2fx\n",
                    kernels[k].name.c_str(), static_cast<long long>(sizes[s]),
                    static_cast<long long>(vm.instances), walker.ips(),
                    vm.ips(), speedup);

      if (s) {
        js << ",";
        njs << ",";
      }
      js << "{\"n\":" << sizes[s] << ",";
      emit_engine(js, "walker", walker);
      js << ",";
      emit_engine(js, "vm", vm);
      if (have_native) {
        js << ",";
        emit_engine(js, "native", native);
      }
      js << ",\"speedup\":" << speedup << "}";
      njs << "{\"n\":" << sizes[s] << ",";
      emit_engine(njs, "native", native);
      njs << ",\"native_vs_vm\":" << native_vs_vm
          << ",\"bit_identical\":" << (identical ? "true" : "false") << "}";
    }
    js << "],\"speedup_at_largest\":" << largest_speedup << "}";
    njs << "],\"native_vs_vm_at_largest\":" << largest_native_vs_vm << "}";
    if (have_native && largest_native_vs_vm > 0) {
      log_ratio_sum += std::log(largest_native_vs_vm);
      ++log_ratio_count;
    }
  }
  js << "]}\n";

  // Second pass: drop the in-process handle cache and run every kernel
  // once more at the largest size. Every kernel must come back from the
  // on-disk cache — zero recompiles — or the content-addressed cache is
  // broken.
  i64 recompiles_second_run = 0;
  if (have_native) {
    native_lru_clear();
    StatsSnapshot s0 = Stats::global().snapshot();
    for (const Kernel& kern : kernels) {
      Program p = kern.make();
      std::map<std::string, i64> params{{"N", sizes.back()}};
      Memory mem;
      declare_arrays(p, params, mem);
      fill_spd(mem, 3);
      InterpOptions opts;
      opts.engine = ExecEngine::kNative;
      interpret(p, params, mem, opts);
    }
    StatsSnapshot d = Stats::global().snapshot() - s0;
    recompiles_second_run = d.counter("exec.native.compiles");
  }
  const double geomean =
      log_ratio_count > 0 ? std::exp(log_ratio_sum / log_ratio_count) : 0;
  njs << "],\"bit_identical\":" << (all_bit_identical ? "true" : "false")
      << ",\"recompiles_second_run\":" << recompiles_second_run
      << ",\"geomean_native_vs_vm_at_largest\":" << geomean << "}\n";

  std::ofstream out(out_path);
  out << js.str();
  std::printf("wrote %s\n", out_path.c_str());
  std::ofstream nout(native_out_path);
  nout << njs.str();
  if (have_native)
    std::printf(
        "wrote %s (bit_identical=%s, recompiles_second_run=%lld, "
        "geomean native/vm at N=%lld: %.2fx)\n",
        native_out_path.c_str(), all_bit_identical ? "true" : "false",
        static_cast<long long>(recompiles_second_run),
        static_cast<long long>(sizes.back()), geomean);
  else
    std::printf("wrote %s (native unavailable)\n", native_out_path.c_str());
  return all_bit_identical ? 0 : 1;
}
