// Parallel execution engine head-to-head: the partitioned doall/
// wavefront driver (exec/parallel.hpp) vs. the serial VM on the same
// programs and inputs — Cholesky, LU, the 2-D stencil, and the §5.5
// skewed wavefront form of that stencil, at N ∈ {64, 96, 128} and
// 1/2/4/8 worker threads.
//
// Each kernel's doall partition comes from the parallelism analysis
// itself (source_parallel_schedule / analyze_target_parallelism), not
// from hand annotation, so the benchmark measures exactly what the
// --exec-threads verification path runs. The serial stencil has no
// doall level and exercises the serial fallback (speedup ~1 by
// construction). Every parallel run is checked memcmp-identical to the
// serial run before anything is timed; a mismatch aborts the process.
//
// Emits BENCH_parallel.json (override with --out=PATH). Speedups are
// reported as data, not asserted: they depend on the host's core
// count (nproc on the CI runners; 1 on a uniprocessor, where every
// ratio is ~1 and only the bit-identity check has teeth). Unknown
// --benchmark_* flags are accepted and ignored so the binary can run
// under the same harness invocation as the google-benchmark suites.
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "codegen/generate.hpp"
#include "exec/interp.hpp"
#include "ir/gallery.hpp"
#include "ir/parser.hpp"
#include "support/profile.hpp"
#include "transform/parallel.hpp"
#include "transform/transforms.hpp"

namespace {

using namespace inlt;

double now_s() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

Program stencil() {
  return parse_program(R"(
param N
do I = 1, N
  do J = 1, N
    S1: U(I, J) = U(I - 1, J) + U(I, J - 1)
  end
end
)");
}

struct Kernel {
  std::string name;
  Program program;
  std::vector<std::string> partition;
  bool wavefront = false;
};

std::vector<Kernel> kernels() {
  std::vector<Kernel> out;
  for (auto [name, p] : {std::pair<const char*, Program>{
                             "cholesky_kij", gallery::cholesky()},
                         {"lu", gallery::lu()}}) {
    IvLayout layout(p);
    DependenceSet deps = analyze_dependences(layout);
    ParallelSchedule s = source_parallel_schedule(layout, deps);
    out.push_back({name, p, s.partition, s.wavefront});
  }
  {
    // Serial contrast: the stencil as written has no doall level, so
    // the engine falls back to one thread at any requested count.
    Program p = stencil();
    IvLayout layout(p);
    DependenceSet deps = analyze_dependences(layout);
    ParallelSchedule s = source_parallel_schedule(layout, deps);
    out.push_back({"stencil_serial", p, s.partition, s.wavefront});
  }
  {
    // §5.5: skewing exposes the inner doall; the time loop runs the
    // per-activation barriers hard (one barrier pair per diagonal).
    Program p = stencil();
    IvLayout layout(p);
    DependenceSet deps = analyze_dependences(layout);
    IntMat m = loop_skew(layout, "I", "J", 1);
    CodegenResult gen = generate_code(layout, deps, m);
    AstRecovery rec = recover_ast(layout, m);
    ParallelSchedule s = analyze_target_parallelism(layout, deps, m, rec);
    out.push_back({"stencil_wavefront", gen.program, s.partition,
                   s.wavefront});
  }
  return out;
}

struct Run {
  double seconds = 0;  // total measured interpret() time
  i64 runs = 0;
  i64 instances = 0;   // per run
  double per_run() const {
    return runs > 0 ? seconds / static_cast<double>(runs) : 0;
  }
};

// One untimed correctness run: the parallel result must be bit
// identical to the serial reference or the benchmark is measuring a
// wrong answer — abort rather than publish a number.
void check_identical(const Kernel& k, const std::map<std::string, i64>& params,
                     const Memory& proto, const Memory& serial, int threads) {
  Memory mem = proto;
  InterpOptions opts;
  opts.num_threads = threads;
  opts.partition = k.partition;
  interpret(k.program, params, mem, opts);
  for (const auto& [name, arr] : serial.arrays()) {
    const DenseArray& got = mem.at(name);
    if (got.data().size() != arr.data().size() ||
        std::memcmp(got.data().data(), arr.data().data(),
                    arr.data().size() * sizeof(double)) != 0) {
      std::fprintf(stderr,
                   "bench_parallel: %s at %d threads is NOT bit-identical "
                   "to serial (array %s)\n",
                   k.name.c_str(), threads, name.c_str());
      std::abort();
    }
  }
}

// Time interpret() at `threads` on copies of `proto` until the budget
// is spent (min 3 timed runs, one untimed warmup). Copies stay outside
// the timer.
Run measure(const Kernel& k, const std::map<std::string, i64>& params,
            const Memory& proto, int threads, double budget_s) {
  InterpOptions opts;
  opts.num_threads = threads;
  opts.partition = k.partition;
  Run r;
  {
    Memory warm = proto;
    r.instances = interpret(k.program, params, warm, opts).instances;
  }
  for (;;) {
    Memory mem = proto;
    double t0 = now_s();
    interpret(k.program, params, mem, opts);
    r.seconds += now_s() - t0;
    r.runs += 1;
    if (r.seconds >= budget_s && r.runs >= 3) break;
  }
  return r;
}

}  // namespace

int main(int argc, char** argv) {
  double budget_s = 0.25;
  std::string out_path = "BENCH_parallel.json";
  bool profile = false;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--out=", 0) == 0) {
      out_path = arg.substr(6);
    } else if (arg == "--profile") {
      // Attach the execution profiler's per-thread-count report
      // (utilization, barrier share, measured parallel fraction) to
      // each timed entry. The profiler's clock reads ride inside the
      // timed region, so --profile numbers are not comparable to
      // unprofiled ones — the CI regression gate runs without it.
      profile = true;
    } else if (arg.rfind("--benchmark_min_time=", 0) == 0) {
      double v = std::atof(arg.c_str() + std::strlen("--benchmark_min_time="));
      if (v > 0) budget_s = arg.back() == 'x' ? std::min(0.25, 0.05 * v) : v;
    }
    // Other --benchmark_* flags: accepted, ignored.
  }

  const std::vector<i64> sizes = {64, 96, 128};
  const std::vector<int> threads = {1, 2, 4, 8};

  std::ostringstream js;
  js << "{\"benchmark\":\"bench_parallel\",\"kernels\":[";
  bool first_kernel = true;
  for (const Kernel& k : kernels()) {
    if (!first_kernel) js << ",";
    first_kernel = false;
    js << "{\"name\":\"" << k.name << "\",\"partition\":[";
    for (size_t i = 0; i < k.partition.size(); ++i)
      js << (i ? "," : "") << "\"" << k.partition[i] << "\"";
    js << "],\"wavefront\":" << (k.wavefront ? "true" : "false")
       << ",\"sizes\":[";
    double speedup8_at_largest = 0;
    for (size_t s = 0; s < sizes.size(); ++s) {
      std::map<std::string, i64> params{{"N", sizes[s]}};
      Memory proto;
      declare_arrays(k.program, params, proto);
      fill_spd(proto, 3);

      Memory serial_mem = proto;
      interpret(k.program, params, serial_mem, {});
      for (int t : threads) check_identical(k, params, proto, serial_mem, t);

      if (s) js << ",";
      js << "{\"n\":" << sizes[s] << ",\"threads\":[";
      double serial_per_run = 0;
      for (size_t t = 0; t < threads.size(); ++t) {
        const bool prof_this = profile && threads[t] > 1;
        if (prof_this) {
          ExecProfiler::global().clear();
          ExecProfiler::global().enable();
        }
        Run r = measure(k, params, proto, threads[t], budget_s);
        if (prof_this) ExecProfiler::global().disable();
        if (threads[t] == 1) serial_per_run = r.per_run();
        double speedup =
            r.per_run() > 0 ? serial_per_run / r.per_run() : 0;
        if (threads[t] == 8) speedup8_at_largest = speedup;

        std::printf("%-18s N=%3lld threads=%d %10lld inst | %9.4f s/run | "
                    "%6.2fx\n",
                    k.name.c_str(), static_cast<long long>(sizes[s]),
                    threads[t], static_cast<long long>(r.instances),
                    r.per_run(), speedup);

        if (t) js << ",";
        js << "{\"threads\":" << threads[t] << ",\"seconds\":" << r.seconds
           << ",\"runs\":" << r.runs << ",\"instances\":" << r.instances
           << ",\"seconds_per_run\":" << r.per_run()
           << ",\"speedup\":" << speedup << ",\"bit_identical\":true";
        if (prof_this && ExecProfiler::global().report_count() > 0) {
          ProfileReport rep = ExecProfiler::global().merged();
          js << ",\"profile\":{\"avg_utilization\":" << rep.avg_utilization()
             << ",\"load_imbalance\":" << rep.load_imbalance()
             << ",\"barrier_share\":" << rep.barrier_share()
             << ",\"measured_parallel_fraction\":"
             << rep.measured_parallel_fraction() << "}";
        }
        js << "}";
      }
      js << "]}";
    }
    js << "],\"speedup_8t_at_largest\":" << speedup8_at_largest << "}";
  }
  js << "]}\n";

  std::ofstream out(out_path);
  out << js.str();
  std::printf("wrote %s\n", out_path.c_str());
  return 0;
}
