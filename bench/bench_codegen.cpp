// C6 — code-generation cost: Fourier–Motzkin bound generation and the
// whole §5 pipeline as nest depth grows (skewed deep perfect nests are
// the worst case for FM, since every level's bounds mention all outer
// variables).
#include <benchmark/benchmark.h>

#include <sstream>

#include "codegen/generate.hpp"
#include "ir/gallery.hpp"
#include "ir/parser.hpp"
#include "transform/completion.hpp"
#include "transform/transforms.hpp"

namespace {

using namespace inlt;

Program make_deep_nest(int depth) {
  std::ostringstream os;
  os << "param N\n";
  std::string indent;
  for (int d = 0; d < depth; ++d) {
    os << indent << "do I" << d << " = 1, N\n";
    indent += "  ";
  }
  os << indent << "S0: A(";
  for (int d = 0; d < depth; ++d) os << (d ? ", " : "") << "I" << d;
  os << ") = 1.0\n";
  for (int d = depth - 1; d >= 0; --d) {
    indent = std::string(static_cast<size_t>(2 * d), ' ');
    os << indent << "end\n";
  }
  return parse_program(os.str());
}

IntMat full_skew(const IvLayout& layout, int depth) {
  // Skew every loop by its inner neighbor: a dense lower-triangular-ish
  // transformation stressing bound generation.
  IntMat m = IntMat::identity(layout.size());
  for (int d = 0; d + 1 < depth; ++d)
    m = mat_mul(loop_skew(layout, "I" + std::to_string(d),
                          "I" + std::to_string(d + 1), 1),
                m);
  return m;
}

void BM_GenerateDeepSkew(benchmark::State& state) {
  int depth = static_cast<int>(state.range(0));
  Program p = make_deep_nest(depth);
  IvLayout layout(p);
  DependenceSet deps = analyze_dependences(layout);
  IntMat m = full_skew(layout, depth);
  for (auto _ : state) {
    CodegenResult res = generate_code(layout, deps, m);
    benchmark::DoNotOptimize(res.program.roots().size());
  }
  state.counters["depth"] = depth;
}
BENCHMARK(BM_GenerateDeepSkew)->DenseRange(2, 6)->Unit(
    benchmark::kMillisecond);

void BM_GenerateCholeskyLeftLooking(benchmark::State& state) {
  // Full §6 pipeline cost: analysis excluded, codegen only.
  Program p = gallery::cholesky();
  IvLayout layout(p);
  DependenceSet deps = analyze_dependences(layout);
  IntMat m(7, 7);
  // Assemble the left-looking matrix via the completion once.
  {
    IntVec first(7, 0);
    first[layout.loop_position("L")] = 1;
    m = complete_transformation(layout, deps, {first}).matrix;
  }
  for (auto _ : state) {
    CodegenResult res = generate_code(layout, deps, m);
    benchmark::DoNotOptimize(res.program.roots().size());
  }
}
BENCHMARK(BM_GenerateCholeskyLeftLooking)->Unit(benchmark::kMillisecond);

void BM_GenerateSkewAugmentation(benchmark::State& state) {
  // §5.4/5.5's example end to end, including augmentation.
  Program p = gallery::augmentation_example();
  IvLayout layout(p);
  DependenceSet deps = analyze_dependences(layout);
  IntMat m = loop_skew(layout, "I", "J", -1);
  for (auto _ : state) {
    CodegenResult res = generate_code(layout, deps, m);
    benchmark::DoNotOptimize(res.program.roots().size());
  }
}
BENCHMARK(BM_GenerateSkewAugmentation)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
