// Tiled vs. untiled execution head-to-head: left-looking Cholesky and
// LU (the forms whose fully-permutable (outer, update) band actually
// blocks) plus the 2-D stencil (a control: every reference is indexed
// by both band dims, so blocking cannot help), at N ∈ {128, 256},
// explicit tile sizes {8, 16, 32} and the cost model's auto pick.
//
// For each (kernel, N, tiling) the tiled program is first checked
// bit-identical to the untiled reference under both the VM and the
// native engine — tiling is a reorder, a single differing bit means a
// wrong rewrite and the process aborts rather than publish a number.
// Then native wall-clock is measured both ways (the VM as secondary
// data: interpreter dispatch dilutes memory effects), and a
// small-table CacheProbe (tag table sized to the modeled cache
// capacity, so it approximates misses of a direct-mapped cache of
// that size) gives a machine-independent locality ratio.
//
// Emits BENCH_tile.json (override with --out=PATH; --n=A,B overrides
// the size sweep). Gated in bench/baseline.json on the
// machine-independent facts — bit-identity and the probe ratios —
// plus a generous floor on the recorded auto-tile wall-clock ratio:
// on hosts whose outer cache swallows the whole working set the
// fetch reduction does not convert to wall clock (see EXPERIMENTS.md
// C11). Unknown --benchmark_* flags are accepted and ignored so the
// binary runs under the same harness invocation as the
// google-benchmark suites.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "exec/interp.hpp"
#include "exec/native.hpp"
#include "ir/parser.hpp"
#include "support/cache_geometry.hpp"
#include "tile/plan.hpp"

namespace {

using namespace inlt;

double now_s() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

// Left-looking (jki) Cholesky: the output of completing the paper's
// Cholesky fragment with the L-before-K order — the (K, J) band tiles.
Program cholesky_jki() {
  return parse_program(R"(
param N
do K = 1, N
  do J = 1, K - 1
    do L = K, N
      S3: A(L, K) = A(L, K) - A(L, J) * A(K, J)
    end
  end
  S1: A(K, K) = sqrt(A(K, K))
  do I = K + 1, N
    S2: A(I, K) = A(I, K) / A(K, K)
  end
end
)");
}

// Left-looking (jki) LU, no pivoting: column J is updated by all
// previous columns, then scaled — the (J, K) band tiles.
Program lu_jki() {
  return parse_program(R"(
param N
do J = 1, N
  do K = 1, J - 1
    do I = K + 1, N
      S1: A(I, J) = A(I, J) - A(I, K) * A(K, J)
    end
  end
  do I = J + 1, N
    S2: A(I, J) = A(I, J) / A(J, J)
  end
end
)");
}

Program stencil() {
  return parse_program(R"(
param N
do I = 1, N
  do J = 1, N
    S1: U(I, J) = U(I - 1, J) + U(I, J - 1)
  end
end
)");
}

struct Kernel {
  std::string name;
  Program program;
  std::vector<std::string> band;  // loops for the explicit-size runs
};

struct Run {
  double best = 0;  // fastest single run: robust to interference spikes
  i64 runs = 0;
  double per_run() const { return best; }
};

// Default interpreter budget is sized for tests; N=1024 runs need more.
constexpr i64 kInstanceBudget = i64{4} << 30;

Run measure(const Program& p, const std::map<std::string, i64>& params,
            const Memory& proto, ExecEngine engine, double budget_s) {
  InterpOptions opts;
  opts.engine = engine;
  opts.max_instances = kInstanceBudget;
  Run r;
  {
    Memory warm = proto;  // untimed: native compile, cache warm-up
    interpret(p, params, warm, opts);
  }
  double spent = 0;
  for (;;) {
    Memory mem = proto;
    double t0 = now_s();
    interpret(p, params, mem, opts);
    const double dt = now_s() - t0;
    spent += dt;
    if (r.runs == 0 || dt < r.best) r.best = dt;
    r.runs += 1;
    // Min-of-runs within a time budget; a single slow run (VM at large
    // N) is not repeated past 5x the budget.
    if ((spent >= budget_s && r.runs >= 3) || spent >= 5 * budget_s) break;
  }
  return r;
}

// Abort unless `p` leaves memory bit-identical to the reference under
// `engine` — a benchmark of a wrong rewrite is worse than no number.
void check_identical(const Program& p,
                     const std::map<std::string, i64>& params,
                     const Memory& proto, const Memory& ref,
                     ExecEngine engine, const std::string& what) {
  Memory mem = proto;
  InterpOptions opts;
  opts.engine = engine;
  opts.max_instances = kInstanceBudget;
  interpret(p, params, mem, opts);
  for (const auto& [name, arr] : ref.arrays()) {
    const DenseArray& got = mem.at(name);
    if (got.data().size() != arr.data().size() ||
        std::memcmp(got.data().data(), arr.data().data(),
                    arr.data().size() * sizeof(double)) != 0) {
      std::fprintf(stderr,
                   "bench_tile: %s is NOT bit-identical to the untiled "
                   "reference (array %s)\n",
                   what.c_str(), name.c_str());
      std::abort();
    }
  }
}

// Distinct-line estimate from a tag table sized to the modeled cache:
// approximates misses of a direct-mapped cache of capacity_lines.
i64 probe_lines(const Program& p, const std::map<std::string, i64>& params,
                const Memory& proto) {
  Memory mem = proto;
  CacheProbe probe;
  int bits = 0;
  while ((i64{1} << bits) < kCacheCapacityLines) ++bits;
  probe.bucket_bits = bits;
  InterpOptions opts;
  opts.cache_probe = &probe;
  opts.max_instances = kInstanceBudget;
  interpret(p, params, mem, opts);
  return probe.lines;
}

}  // namespace

int main(int argc, char** argv) {
  double budget_s = 0.2;
  std::string out_path = "BENCH_tile.json";
  std::vector<i64> sizes_n = {128, 256};
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--out=", 0) == 0) {
      out_path = arg.substr(6);
    } else if (arg.rfind("--n=", 0) == 0) {
      sizes_n.clear();
      std::istringstream is(arg.substr(4));
      std::string tok;
      while (std::getline(is, tok, ',')) sizes_n.push_back(std::atoll(tok.c_str()));
      if (sizes_n.empty()) sizes_n = {128, 256};
    } else if (arg.rfind("--benchmark_min_time=", 0) == 0) {
      double v = std::atof(arg.c_str() + std::strlen("--benchmark_min_time="));
      if (v > 0) budget_s = arg.back() == 'x' ? std::min(0.2, 0.05 * v) : v;
    }
    // Other --benchmark_* flags: accepted, ignored.
  }

  std::string native_why;
  const bool have_native = native_available(&native_why);
  if (!have_native)
    std::fprintf(stderr, "bench_tile: native engine unavailable (%s); "
                 "native speedups will ride the VM fallback\n",
                 native_why.c_str());

  std::vector<Kernel> kernels;
  kernels.push_back({"cholesky_jki", cholesky_jki(), {"K", "J"}});
  kernels.push_back({"lu_jki", lu_jki(), {"J", "K"}});
  kernels.push_back({"stencil", stencil(), {"I", "J"}});

  const std::vector<i64> tile_sizes = {8, 16, 32};

  double best_auto_native_speedup_n256 = 0;

  std::ostringstream js;
  js << "{\"benchmark\":\"bench_tile\",\"native_unavailable\":"
     << (have_native ? "false" : "true") << ",\"kernels\":[";
  bool first_kernel = true;
  for (const Kernel& k : kernels) {
    if (!first_kernel) js << ",";
    first_kernel = false;
    js << "{\"name\":\"" << k.name << "\",\"sizes\":[";
    double headline_speedup = 0;  // best native speedup at largest N
    for (size_t s = 0; s < sizes_n.size(); ++s) {
      const i64 n = sizes_n[s];
      std::map<std::string, i64> params{{"N", n}};
      Memory proto;
      declare_arrays(k.program, params, proto);
      fill_spd(proto, 3);

      Memory ref = proto;
      InterpOptions ref_opts;
      ref_opts.max_instances = kInstanceBudget;
      interpret(k.program, params, ref, ref_opts);
      check_identical(k.program, params, proto, ref, ExecEngine::kNative,
                      k.name + " untiled/native");

      const i64 untiled_lines = probe_lines(k.program, params, proto);
      Run un_vm = measure(k.program, params, proto, ExecEngine::kVm, budget_s);
      Run un_nat =
          measure(k.program, params, proto, ExecEngine::kNative, budget_s);

      if (s) js << ",";
      js << "{\"n\":" << n
         << ",\"untiled\":{\"vm_seconds_per_run\":" << un_vm.per_run()
         << ",\"native_seconds_per_run\":" << un_nat.per_run()
         << ",\"probe_lines\":" << untiled_lines << "},\"tiles\":[";

      // One tiled variant: rewrite, verify bit-identity on both
      // engines, then time. Returns the native speedup.
      auto run_tiled = [&](const TileOptions& topts,
                           const char* label) -> double {
        // The planner models trips symbolically; telling it the real N
        // lets the capacity penalty see N=256 working sets.
        ModelOptions mopts;
        mopts.nominal_trip = n;
        TiledProgram tp = apply_tile(k.program, topts, mopts);
        js << "\"applied\":" << (tp.plan.applied ? "true" : "false");
        js << ",\"plan_sizes\":[";
        for (size_t i = 0; i < tp.plan.spec.sizes.size(); ++i)
          js << (i ? "," : "") << tp.plan.spec.sizes[i];
        js << "]";
        if (!tp.program) {
          js << ",\"native_speedup\":1,\"vm_speedup\":1,\"probe_ratio\":1"
             << ",\"bit_identical\":true";
          std::printf("%-13s N=%3lld %-8s not applied (%s)\n", k.name.c_str(),
                      static_cast<long long>(n), label,
                      tp.plan.note.c_str());
          return 1.0;
        }
        const Program& tiled = *tp.program;
        check_identical(tiled, params, proto, ref, ExecEngine::kVm,
                        k.name + " tiled/vm");
        check_identical(tiled, params, proto, ref, ExecEngine::kNative,
                        k.name + " tiled/native");
        const i64 tiled_lines = probe_lines(tiled, params, proto);
        Run t_vm = measure(tiled, params, proto, ExecEngine::kVm, budget_s);
        Run t_nat =
            measure(tiled, params, proto, ExecEngine::kNative, budget_s);
        const double nat_speedup =
            t_nat.per_run() > 0 ? un_nat.per_run() / t_nat.per_run() : 0;
        const double vm_speedup =
            t_vm.per_run() > 0 ? un_vm.per_run() / t_vm.per_run() : 0;
        const double ratio =
            untiled_lines > 0
                ? static_cast<double>(tiled_lines) /
                      static_cast<double>(untiled_lines)
                : 1.0;
        js << ",\"native_speedup\":" << nat_speedup
           << ",\"vm_speedup\":" << vm_speedup
           << ",\"probe_lines\":" << tiled_lines
           << ",\"probe_ratio\":" << ratio << ",\"bit_identical\":true";
        std::printf("%-13s N=%3lld %-8s native %6.2fx | vm %5.2fx | "
                    "probe %5.3f\n",
                    k.name.c_str(), static_cast<long long>(n), label,
                    nat_speedup, vm_speedup, ratio);
        return nat_speedup;
      };

      for (size_t t = 0; t < tile_sizes.size(); ++t) {
        if (t) js << ",";
        js << "{\"size\":" << tile_sizes[t] << ",";
        TileOptions topts;
        topts.loops = k.band;
        topts.sizes.assign(k.band.size(), tile_sizes[t]);
        topts.force = true;
        double sp = run_tiled(
            topts, (std::to_string(tile_sizes[t]) + "x").c_str());
        if (s + 1 == sizes_n.size()) headline_speedup =
            std::max(headline_speedup, sp);
        js << "}";
      }
      js << "],\"auto\":{";
      TileOptions aopts;
      aopts.auto_select = true;
      double auto_sp = run_tiled(aopts, "auto");
      js << "}";
      if (s + 1 == sizes_n.size()) {
        headline_speedup = std::max(headline_speedup, auto_sp);
        if (n == 256 && k.name != "stencil")
          best_auto_native_speedup_n256 =
              std::max(best_auto_native_speedup_n256, auto_sp);
      }
      js << "}";
    }
    js << "],\"speedup\":" << headline_speedup << "}";
  }
  js << "],\"best_auto_native_speedup_n256\":"
     << best_auto_native_speedup_n256 << "}\n";

  std::ofstream out(out_path);
  out << js.str();
  std::printf("wrote %s\n", out_path.c_str());
  return 0;
}
