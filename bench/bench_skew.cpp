// C4 — §5.5: the source B/A imperfect nest vs the generated
// skew-transformed code (simplified form). The transformation
// separates the B recurrence from the triangular A fill; the benchmark
// measures the effect of that separation.
#include <benchmark/benchmark.h>

#include "kernels/skew.hpp"

namespace {

using namespace inlt::kernels;

void BM_SkewSource(benchmark::State& state) {
  std::size_t n = static_cast<std::size_t>(state.range(0));
  std::size_t stride = n + 2;
  std::vector<double> a0(stride * stride, 0.25), b0(n + 1, 0.5);
  for (auto _ : state) {
    std::vector<double> a = a0, b = b0;
    skew_source(a, b, n);
    benchmark::DoNotOptimize(a.data());
    benchmark::DoNotOptimize(b.data());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(n) * n / 2);
}

void BM_SkewTransformed(benchmark::State& state) {
  std::size_t n = static_cast<std::size_t>(state.range(0));
  std::size_t stride = n + 2;
  std::vector<double> a0(stride * stride, 0.25), b0(n + 1, 0.5);
  for (auto _ : state) {
    std::vector<double> a = a0, b = b0;
    skew_transformed(a, b, n);
    benchmark::DoNotOptimize(a.data());
    benchmark::DoNotOptimize(b.data());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(n) * n / 2);
}

BENCHMARK(BM_SkewSource)->RangeMultiplier(2)->Range(256, 4096)->Unit(
    benchmark::kMicrosecond);
BENCHMARK(BM_SkewTransformed)->RangeMultiplier(2)->Range(256, 4096)->Unit(
    benchmark::kMicrosecond);

}  // namespace

BENCHMARK_MAIN();
