// C8 — the locality price of the wavefront order: sequential
// Gauss-Seidel in original vs skewed traversal (the transformation
// examples/wavefront_parallel.cpp derives). The wavefront makes the
// inner loop a doall at the cost of diagonal memory strides; this
// measures that cost on one core.
#include <benchmark/benchmark.h>

#include "kernels/stencil.hpp"

namespace {

using namespace inlt::kernels;

void BM_GaussSeidelOriginal(benchmark::State& state) {
  std::size_t n = static_cast<std::size_t>(state.range(0));
  std::vector<double> init((n + 1) * (n + 1), 1.0);
  for (auto _ : state) {
    std::vector<double> u = init;
    gauss_seidel(u, n);
    benchmark::DoNotOptimize(u.data());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(n) * n);
}

void BM_GaussSeidelWavefront(benchmark::State& state) {
  std::size_t n = static_cast<std::size_t>(state.range(0));
  std::vector<double> init((n + 1) * (n + 1), 1.0);
  for (auto _ : state) {
    std::vector<double> u = init;
    gauss_seidel_wavefront(u, n);
    benchmark::DoNotOptimize(u.data());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(n) * n);
}

BENCHMARK(BM_GaussSeidelOriginal)->RangeMultiplier(2)->Range(256, 2048)->Unit(
    benchmark::kMicrosecond);
BENCHMARK(BM_GaussSeidelWavefront)->RangeMultiplier(2)->Range(256, 2048)->Unit(
    benchmark::kMicrosecond);

}  // namespace

BENCHMARK_MAIN();
