// Model-vs-measured head-to-head: does the static cache-locality cost
// model (model/cost.hpp) rank candidates the way execution does?
//
// Three kernel families, each a set of legal transformations of one
// source nest:
//
//  * cholesky_orders — the expressible orderings of the Cholesky
//    update space (KJL, KLJ, LJK, LKJ; the two J-outer forms are not
//    expressible under diagonal padding — see test_six_permutations),
//    built by §6 completion from order rows.
//  * lu_orders — the same construction over the LU factorization
//    nest; the legal subset is discovered at runtime.
//  * skew_example — §5.5's imperfect nest, ranked end-to-end through
//    search() rank mode (legality filter + Complete + Cost stages)
//    over the permutation × skew space.
//
// For every variant the model's estimated distinct cache lines are
// compared against ground truth from the VM's cache probe
// (exec/interp.hpp CacheProbe) running the *generated* program: with
// bucket_bits sized well below the working set the probe approximates
// the miss count of a direct-mapped cache, so loop order matters, and
// the count is bit-deterministic across machines. Wall time per
// variant is reported but not asserted (machine-dependent).
//
// Asserted (exit 1 on failure), per family:
//  * the model's top-1 pick is among the measured-best variants;
//  * no pair of variants is ranked discordantly (model and probe
//    never disagree on which of two variants is better);
//  * Kendall tau is positive, unless every pair ties in both model
//    and measurement — that is the skew family's correct verdict (§5.5
//    skews reorder instances without changing any reference's
//    innermost stride), and mutual tie-out counts as agreement.
//
// Emits BENCH_model.json (override with --out=PATH). Unknown
// --benchmark_* flags are accepted and ignored so the binary can run
// under the same harness invocation as the google-benchmark suites.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "exec/interp.hpp"
#include "ir/gallery.hpp"
#include "model/cost.hpp"
#include "pipeline/search.hpp"
#include "transform/completion.hpp"

namespace {

using namespace inlt;

constexpr i64 kN = 96;          // problem size for probe + timing runs
constexpr int kBucketBits = 8;  // 256-line (16 KiB) direct-mapped "cache"

struct VariantRow {
  std::string name;
  double model_lines = 0;
  i64 measured_lines = 0;
  i64 accesses = 0;
  double seconds = 0;
};

struct FamilyReport {
  std::string name;
  std::vector<VariantRow> rows;
  double kendall_tau = 0;
  i64 pairs = 0, concordant = 0, discordant = 0, tied_both = 0;
  bool top1_match = false;
  std::string model_best, measured_best;
  bool pass() const {
    return top1_match && discordant == 0 &&
           (concordant > 0 || tied_both == pairs);
  }
};

double now_s() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

// Probe + time one generated program at N = kN.
void measure_program(const Program& p, VariantRow* row) {
  const std::map<std::string, i64> params = {{"N", kN}};
  {
    Memory mem;
    declare_arrays(p, params, mem);
    fill_spd(mem, 1);
    CacheProbe probe;
    probe.bucket_bits = kBucketBits;
    InterpOptions io;
    io.cache_probe = &probe;
    interpret(p, params, mem, io);
    row->measured_lines = probe.lines;
    row->accesses = probe.accesses;
  }
  double best = 0;
  for (int rep = 0; rep < 3; ++rep) {
    Memory mem;
    declare_arrays(p, params, mem);
    fill_spd(mem, 1);
    double t0 = now_s();
    interpret(p, params, mem, {});
    double dt = now_s() - t0;
    if (rep == 0 || dt < best) best = dt;
  }
  row->seconds = best;
}

// Finish a family: rank agreement between model and measured lines.
void finish(FamilyReport* fam) {
  const std::vector<VariantRow>& r = fam->rows;
  for (size_t i = 0; i < r.size(); ++i)
    for (size_t j = i + 1; j < r.size(); ++j) {
      ++fam->pairs;
      double dm = r[i].model_lines - r[j].model_lines;
      i64 dv = r[i].measured_lines - r[j].measured_lines;
      if (dm * static_cast<double>(dv) > 0)
        ++fam->concordant;
      else if (dm * static_cast<double>(dv) < 0)
        ++fam->discordant;
      else if (dm == 0 && dv == 0)
        ++fam->tied_both;
    }
  fam->kendall_tau =
      fam->pairs > 0 ? static_cast<double>(fam->concordant - fam->discordant) /
                           static_cast<double>(fam->pairs)
                     : 0;
  size_t mbest = 0, vbest = 0;
  for (size_t i = 1; i < r.size(); ++i) {
    if (r[i].model_lines < r[mbest].model_lines) mbest = i;
    if (r[i].measured_lines < r[vbest].measured_lines) vbest = i;
  }
  fam->model_best = r[mbest].name;
  fam->measured_best = r[vbest].name;
  // Ties in measured lines: the model pick counts as top-1 when it
  // measures as well as the best.
  fam->top1_match = r[mbest].measured_lines == r[vbest].measured_lines;
}

// Family 1/2: §6 completion from order rows (one unit row per named
// loop, outermost first); inexpressible orders are skipped.
FamilyReport order_family(const std::string& name, Program (*make)(),
                          const std::vector<std::string>& orders) {
  FamilyReport fam;
  fam.name = name;
  TransformSession session(make());
  const IvLayout& layout = session.layout();
  const DependenceSet& deps = session.dependences();
  ModelOptions mopts;
  mopts.nominal_trip = kN;

  for (const std::string& order : orders) {
    std::vector<IntVec> rows;
    for (char c : order) {
      IntVec r(layout.size(), 0);
      r[layout.loop_position(std::string(1, c))] = 1;
      rows.push_back(std::move(r));
    }
    IntMat matrix;
    try {
      matrix = complete_transformation(layout, deps, rows).matrix;
    } catch (const TransformError&) {
      std::printf("%-16s %-6s inexpressible under diagonal padding\n",
                  name.c_str(), order.c_str());
      continue;
    }
    CandidateResult cand = session.evaluate(matrix);
    if (!cand.legal || !cand.program) {
      std::printf("%-16s %-6s codegen failed: %s\n", name.c_str(),
                  order.c_str(), cand.error.c_str());
      continue;
    }
    VariantRow row;
    row.name = order;
    row.model_lines = estimate_cost(layout, matrix, mopts).total_lines;
    measure_program(*cand.program, &row);
    fam.rows.push_back(std::move(row));
  }
  finish(&fam);
  return fam;
}

// Family 3: rank mode end-to-end — search() with the Complete + Cost
// stages scores the whole legal permutation × skew space, then every
// hit's generated program is probed.
FamilyReport rank_family(const std::string& name, Program (*make)(),
                         SearchSpace space) {
  FamilyReport fam;
  fam.name = name;
  TransformSession session(make());
  SearchOptions sopts;
  sopts.mode = SearchMode::kLegalityOnly;
  sopts.cost = true;
  sopts.model.nominal_trip = kN;
  SearchResult res = session.search(space, sopts);
  for (const SearchHit& h : res.hits) {
    CandidateResult cand = session.evaluate(h.matrix);
    if (!cand.legal || !cand.program || !h.cost) continue;
    VariantRow row;
    std::ostringstream label;
    label << "candidate#" << h.index;
    row.name = label.str();
    row.model_lines = h.cost->total_lines;
    measure_program(*cand.program, &row);
    fam.rows.push_back(std::move(row));
  }
  finish(&fam);
  return fam;
}

void emit_family(std::ostream& os, const FamilyReport& fam) {
  os << "{\"name\":\"" << fam.name << "\",\"n\":" << kN
     << ",\"bucket_bits\":" << kBucketBits << ",\"variants\":[";
  for (size_t i = 0; i < fam.rows.size(); ++i) {
    const VariantRow& r = fam.rows[i];
    os << (i ? "," : "") << "{\"name\":\"" << r.name
       << "\",\"model_lines\":" << r.model_lines
       << ",\"measured_lines\":" << r.measured_lines
       << ",\"accesses\":" << r.accesses << ",\"seconds\":" << r.seconds
       << "}";
  }
  os << "],\"kendall_tau\":" << fam.kendall_tau
     << ",\"pairs\":" << fam.pairs << ",\"concordant\":" << fam.concordant
     << ",\"discordant\":" << fam.discordant
     << ",\"tied_both\":" << fam.tied_both
     << ",\"top1_match\":" << (fam.top1_match ? "true" : "false")
     << ",\"model_best\":\"" << fam.model_best << "\",\"measured_best\":\""
     << fam.measured_best << "\"}";
}

}  // namespace

int main(int argc, char** argv) {
  std::string out_path = "BENCH_model.json";
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--out=", 0) == 0) out_path = arg.substr(6);
    // --benchmark_* flags: accepted, ignored.
  }

  std::vector<FamilyReport> fams;
  fams.push_back(order_family("cholesky_orders", &gallery::cholesky,
                              {"KJL", "KLJ", "LJK", "LKJ", "JKL", "JLK"}));
  fams.push_back(order_family("lu_orders", &gallery::lu,
                              {"KJL", "KLJ", "LJK", "LKJ", "JKL", "JLK"}));
  fams.push_back(rank_family("skew_example", &gallery::augmentation_example,
                             SearchSpace{1, 1}));

  bool all_pass = true;
  for (const FamilyReport& fam : fams) {
    for (const VariantRow& r : fam.rows)
      std::printf("%-16s %-14s model %12.0f lines | measured %9lld lines "
                  "(%lld accesses) | %8.4fs\n",
                  fam.name.c_str(), r.name.c_str(), r.model_lines,
                  static_cast<long long>(r.measured_lines),
                  static_cast<long long>(r.accesses), r.seconds);
    std::printf("%-16s tau=%+.3f (%lld/%lld/%lld conc/disc/tied)  "
                "model_best=%s measured_best=%s  %s\n",
                fam.name.c_str(), fam.kendall_tau,
                static_cast<long long>(fam.concordant),
                static_cast<long long>(fam.discordant),
                static_cast<long long>(fam.tied_both),
                fam.model_best.c_str(), fam.measured_best.c_str(),
                fam.pass() ? "PASS" : "FAIL");
    all_pass = all_pass && fam.pass();
  }

  std::ostringstream js;
  js << "{\"benchmark\":\"bench_model\",\"families\":[";
  for (size_t i = 0; i < fams.size(); ++i) {
    if (i) js << ",";
    emit_family(js, fams[i]);
  }
  js << "],\"rank_agreement\":" << (all_pass ? "true" : "false") << "}\n";
  std::ofstream out(out_path);
  out << js.str();
  std::printf("wrote %s\n", out_path.c_str());
  return all_pass ? 0 : 1;
}
