// C5 — §1's efficiency claim: the restricted framework keeps analysis
// cheap ("we can use standard dependence abstractions like distances
// and directions ... look for good transformations efficiently").
//
// Measures, on the paper's programs and a generated family of wider
// nests: dependence analysis, the legality test, and the completion
// procedure. Includes the padding-mode ablation from DESIGN.md
// (diagonal vs zero padding), reporting the dependence count as a
// counter.
#include <benchmark/benchmark.h>

#include <sstream>

#include "dependence/analyzer.hpp"
#include "ir/gallery.hpp"
#include "ir/parser.hpp"
#include "transform/completion.hpp"
#include "transform/exact_legality.hpp"
#include "transform/schedule_baseline.hpp"
#include "transform/transforms.hpp"

namespace {

using namespace inlt;

Program make_wide_nest(int statements) {
  // do K { S0; do J1 { T1 }; S1; do J2 { T2 }; ... } — an imperfect
  // nest whose width scales the number of access pairs quadratically.
  std::ostringstream os;
  os << "param N\ndo K = 1, N\n";
  for (int s = 0; s < statements; ++s) {
    os << "  S" << s << ": A(K, " << s << ") = A(K - 1, " << s << ") + 1.0\n";
    os << "  do J" << s << " = K, N\n";
    os << "    T" << s << ": B(J" << s << ", " << s << ") = A(K, " << s
       << ") * 2.0\n  end\n";
  }
  os << "end\n";
  return parse_program(os.str());
}

void BM_DependenceAnalysisCholesky(benchmark::State& state) {
  Program p = gallery::cholesky();
  IvLayout layout(p);
  int ndeps = 0;
  for (auto _ : state) {
    DependenceSet ds = analyze_dependences(layout);
    ndeps = static_cast<int>(ds.deps.size());
    benchmark::DoNotOptimize(ndeps);
  }
  state.counters["deps"] = ndeps;
}
BENCHMARK(BM_DependenceAnalysisCholesky)->Unit(benchmark::kMillisecond);

void BM_DependenceAnalysisWidth(benchmark::State& state) {
  Program p = make_wide_nest(static_cast<int>(state.range(0)));
  IvLayout layout(p);
  int ndeps = 0;
  for (auto _ : state) {
    DependenceSet ds = analyze_dependences(layout);
    ndeps = static_cast<int>(ds.deps.size());
    benchmark::DoNotOptimize(ndeps);
  }
  state.counters["deps"] = ndeps;
  state.counters["stmts"] = static_cast<double>(2 * state.range(0));
}
BENCHMARK(BM_DependenceAnalysisWidth)
    ->DenseRange(1, 9, 2)
    ->Unit(benchmark::kMillisecond);

void BM_PaddingAblation(benchmark::State& state) {
  Program p = gallery::cholesky();
  IvLayout layout(p);
  PadMode pad = state.range(0) == 0 ? PadMode::kDiagonal : PadMode::kZero;
  int ndeps = 0;
  for (auto _ : state) {
    DependenceSet ds = analyze_dependences(layout, {pad, 8});
    ndeps = static_cast<int>(ds.deps.size());
    benchmark::DoNotOptimize(ndeps);
  }
  state.SetLabel(pad == PadMode::kDiagonal ? "diagonal" : "zero");
  state.counters["deps"] = ndeps;
}
BENCHMARK(BM_PaddingAblation)->Arg(0)->Arg(1)->Unit(benchmark::kMillisecond);

void BM_ExactLegalityCheck(benchmark::State& state) {
  // The generality/cost trade-off of §1, measured: exact ILP legality
  // re-solves integer programs per access pair, the hull test is pure
  // interval arithmetic.
  Program p = gallery::cholesky();
  IvLayout layout(p);
  IntMat m = IntMat::identity(layout.size());
  AstRecovery rec = recover_ast(layout, m);
  for (auto _ : state) {
    ExactLegalityResult r = check_legality_exact(layout, m, rec);
    benchmark::DoNotOptimize(r.violations.size());
  }
}
BENCHMARK(BM_ExactLegalityCheck)->Unit(benchmark::kMillisecond);

void BM_LegalityCheck(benchmark::State& state) {
  Program p = gallery::cholesky();
  IvLayout layout(p);
  DependenceSet deps = analyze_dependences(layout);
  IntMat m = IntMat::identity(layout.size());
  for (auto _ : state) {
    LegalityResult r = check_legality(layout, deps, m);
    benchmark::DoNotOptimize(r.violations.size());
  }
}
BENCHMARK(BM_LegalityCheck)->Unit(benchmark::kMicrosecond);

void BM_CompletionCholesky(benchmark::State& state) {
  // The §6 experiment: complete the left-looking partial row.
  Program p = gallery::cholesky();
  IvLayout layout(p);
  DependenceSet deps = analyze_dependences(layout);
  IntVec first(7, 0);
  first[layout.loop_position("L")] = 1;
  for (auto _ : state) {
    CompletionResult res = complete_transformation(layout, deps, {first});
    benchmark::DoNotOptimize(res.matrix.rows());
  }
}
BENCHMARK(BM_CompletionCholesky)->Unit(benchmark::kMicrosecond);

void BM_CompletionWidth(benchmark::State& state) {
  Program p = make_wide_nest(static_cast<int>(state.range(0)));
  IvLayout layout(p);
  DependenceSet deps = analyze_dependences(layout);
  for (auto _ : state) {
    CompletionResult res = complete_transformation(layout, deps, {});
    benchmark::DoNotOptimize(res.matrix.rows());
  }
  state.counters["stmts"] = static_cast<double>(2 * state.range(0));
}
BENCHMARK(BM_CompletionWidth)
    ->DenseRange(1, 9, 2)
    ->Unit(benchmark::kMillisecond);

void BM_BaselineScheduleSearch(benchmark::State& state) {
  // The related-work baseline (§1): per-statement affine schedules
  // found by search over ILP validity queries. Compare with
  // BM_CompletionCholesky — the gap is the paper's whole argument.
  Program p = gallery::cholesky();
  IvLayout layout(p);
  ScheduleSearchOptions wide;
  wide.coef_max = 3;  // 1-D Cholesky schedules need slope 3 in K
  i64 queries = 0;
  for (auto _ : state) {
    ScheduleSearchStats stats;
    auto sched = find_schedule(layout, wide, &stats);
    queries = stats.candidates_checked;
    benchmark::DoNotOptimize(sched.has_value());
  }
  state.counters["ilp_queries"] = static_cast<double>(queries);
}
BENCHMARK(BM_BaselineScheduleSearch)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
