// Candidate-search throughput: candidates/second, cold vs. warm vs.
// incremental, on the Cholesky and LU sweeps.
//
//  * cold        — a fresh session per sweep: dependence analysis and
//                  every Fourier–Motzkin projection from scratch.
//  * warm        — one session, primed ProjectionCache, sequential
//                  evaluate_all over the materialized candidate list
//                  (the PR-1 fast path).
//  * incremental — TransformSession::search(): the same space walked
//                  through the IncrementalLegality engine with prefix
//                  pruning; survivors evaluated through the warm
//                  session (results bit-identical to `warm`).
//  * filter      — search() in SearchMode::kLegalityOnly: identical
//                  verdicts over the whole space, code generation
//                  deferred to the caller — the driver's native
//                  decide-the-space throughput.
//
// Emits BENCH_search.json (override with --out=PATH). Unknown
// --benchmark_* flags are accepted and ignored so the binary can run
// under the same harness invocation as the google-benchmark suites;
// --benchmark_min_time=<t>x scales the per-phase measurement budget.
#include <chrono>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "ir/gallery.hpp"
#include "pipeline/search.hpp"
#include "support/stats.hpp"
#include "support/trace.hpp"
#include "transform/transforms.hpp"

namespace {

using namespace inlt;

double now_s() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

struct Sweep {
  std::string name;
  Program (*make)();
  SearchSpace space;
};

struct Phase {
  double seconds = 0;        // total measured time
  i64 sweeps = 0;            // sweep repetitions measured
  i64 candidates = 0;        // candidates covered (evaluated or pruned)
  i64 legal = 0;
  double cps() const { return seconds > 0 ? candidates / seconds : 0; }
};

// Repeat `body` (one full sweep per call; returns candidates covered
// and legal count) until the measurement budget is spent, with one
// untimed warmup call first.
template <typename Body>
Phase measure(double budget_s, Body&& body) {
  Phase ph;
  for (;;) {
    double t0 = now_s();
    auto [cands, legal] = body();
    double dt = now_s() - t0;
    ph.seconds += dt;
    ph.sweeps += 1;
    ph.candidates += cands;
    ph.legal = legal;
    if (ph.seconds >= budget_s && ph.sweeps >= 3) break;
  }
  return ph;
}

struct SweepReport {
  std::string name;
  i64 candidates = 0;
  Phase cold, warm, incremental, filter;
  StatsSnapshot incremental_delta;  // engine/search counters for the phase
};

SweepReport run_sweep(const Sweep& sweep, double budget_s) {
  SweepReport rep;
  rep.name = sweep.name;

  SessionOptions opts;
  opts.threads = 1;  // same sequential discipline in every phase

  // Reference candidate list, in search enumeration order.
  std::vector<IntMat> cands;
  {
    TransformSession probe(sweep.make(), opts);
    PermutationSkewGenerator gen(probe.layout(), sweep.space);
    cands = materialize_candidates(probe.layout(), gen);
  }
  rep.candidates = static_cast<i64>(cands.size());

  // Cold: fresh session per sweep, nothing amortized.
  rep.cold = measure(budget_s, [&] {
    TransformSession session(sweep.make(), opts);
    i64 legal = 0;
    for (const CandidateResult& r : session.evaluate_all(cands))
      legal += r.legal ? 1 : 0;
    return std::pair<i64, i64>(rep.candidates, legal);
  });

  // Warm: one session, primed cache — the PR-1 evaluate_all fast path.
  {
    TransformSession session(sweep.make(), opts);
    session.evaluate_all(cands);  // prime
    rep.warm = measure(budget_s, [&] {
      i64 legal = 0;
      for (const CandidateResult& r : session.evaluate_all(cands))
        legal += r.legal ? 1 : 0;
      return std::pair<i64, i64>(rep.candidates, legal);
    });
  }

  // Incremental: search() with the session-owned engine; the first
  // (untimed-ish) sweep builds the memo trie, steady state reuses it.
  {
    TransformSession session(sweep.make(), opts);
    PermutationSkewGenerator gen(session.layout(), sweep.space);
    session.search(gen);  // prime cache + engine trie
    StatsSnapshot before = Stats::global().snapshot();
    rep.incremental = measure(budget_s, [&] {
      PermutationSkewGenerator g(session.layout(), sweep.space);
      SearchResult res = session.search(g);
      return std::pair<i64, i64>(res.stats.candidates_total,
                                 res.stats.legal);
    });
    rep.incremental_delta = Stats::global().snapshot() - before;

    rep.filter = measure(budget_s, [&] {
      PermutationSkewGenerator g(session.layout(), sweep.space);
      SearchResult res = session.search(g, {}, SearchMode::kLegalityOnly);
      return std::pair<i64, i64>(res.stats.candidates_total,
                                 res.stats.legal);
    });
  }
  return rep;
}

void emit_phase(std::ostream& os, const char* name, const Phase& ph) {
  os << "\"" << name << "\":{"
     << "\"seconds\":" << ph.seconds << ",\"sweeps\":" << ph.sweeps
     << ",\"candidates\":" << ph.candidates << ",\"legal\":" << ph.legal
     << ",\"candidates_per_second\":" << ph.cps() << "}";
}

}  // namespace

int main(int argc, char** argv) {
  double budget_s = 0.3;
  std::string out_path = "BENCH_search.json";
  std::string trace_path;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--out=", 0) == 0) {
      out_path = arg.substr(6);
    } else if (arg.rfind("--trace-out=", 0) == 0) {
      trace_path = arg.substr(std::strlen("--trace-out="));
    } else if (arg.rfind("--benchmark_min_time=", 0) == 0) {
      // google-benchmark syntax: "<n>x" (iterations) or "<t>s".
      double v = std::atof(arg.c_str() + std::strlen("--benchmark_min_time="));
      if (v > 0) budget_s = arg.back() == 'x' ? std::min(0.3, 0.1 * v) : v;
    }
    // Other --benchmark_* flags: accepted, ignored.
  }
  if (!trace_path.empty()) Tracer::global().enable();

  const std::vector<Sweep> sweeps = {
      {"cholesky_orders", &gallery::cholesky, SearchSpace{0, 0}},
      {"lu_orders", &gallery::lu, SearchSpace{0, 0}},
      {"cholesky_orders_skew1", &gallery::cholesky, SearchSpace{1, 1}},
  };

  std::ostringstream js;
  js << "{\"benchmark\":\"bench_search\",\"sweeps\":[";
  double headline = 0;
  for (size_t i = 0; i < sweeps.size(); ++i) {
    SweepReport rep = run_sweep(sweeps[i], budget_s);
    double speedup_warm =
        rep.warm.cps() > 0 ? rep.incremental.cps() / rep.warm.cps() : 0;
    double speedup_cold =
        rep.cold.cps() > 0 ? rep.incremental.cps() / rep.cold.cps() : 0;
    double speedup_filter =
        rep.warm.cps() > 0 ? rep.filter.cps() / rep.warm.cps() : 0;
    if (rep.name == "cholesky_orders") headline = speedup_filter;

    std::printf("%-24s %6lld cands | cold %9.0f c/s | warm %9.0f c/s | "
                "incremental %9.0f c/s (%.2fx) | filter %11.0f c/s (%.1fx)\n",
                rep.name.c_str(), static_cast<long long>(rep.candidates),
                rep.cold.cps(), rep.warm.cps(), rep.incremental.cps(),
                speedup_warm, rep.filter.cps(), speedup_filter);

    if (i) js << ",";
    js << "{\"name\":\"" << rep.name << "\",\"candidates\":" << rep.candidates
       << ",";
    emit_phase(js, "cold", rep.cold);
    js << ",";
    emit_phase(js, "warm", rep.warm);
    js << ",";
    emit_phase(js, "incremental", rep.incremental);
    js << ",";
    emit_phase(js, "filter", rep.filter);
    js << ",\"speedup_incremental_vs_warm\":" << speedup_warm
       << ",\"speedup_incremental_vs_cold\":" << speedup_cold
       << ",\"speedup_filter_vs_warm\":" << speedup_filter
       << ",\"engine\":{"
       << "\"pushes\":" << rep.incremental_delta.counter("incremental.pushes")
       << ",\"memo_hits\":"
       << rep.incremental_delta.counter("incremental.memo_hits")
       << ",\"rows_evaluated\":"
       << rep.incremental_delta.counter("incremental.rows_evaluated")
       << ",\"pruned\":" << rep.incremental_delta.counter("search.pruned")
       << "}}";
  }
  js << "],\"speedup_cholesky_orders_incremental_vs_warm\":" << headline
     << "}\n";

  std::ofstream out(out_path);
  out << js.str();
  std::printf("wrote %s\n", out_path.c_str());
  if (!trace_path.empty()) {
    std::ofstream tout(trace_path);
    tout << Tracer::global().chrome_trace_json() << "\n";
    std::printf("wrote %s (%lld trace events)\n", trace_path.c_str(),
                static_cast<long long>(Tracer::global().event_count()));
  }
  return 0;
}
