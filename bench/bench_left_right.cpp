// C3 — §6's result: the completion procedure turns right-looking
// Cholesky (kij source, Fig 8 left) into left-looking Cholesky (jki,
// Fig 8 right). This bench compares exactly those two forms, plus the
// kji right-looking column variant, at sizes where the locality
// difference shows.
#include <benchmark/benchmark.h>

#include "kernels/cholesky.hpp"

namespace {

using namespace inlt::kernels;

template <CholeskyFn kFn>
void BM_Form(benchmark::State& state) {
  std::size_t n = static_cast<std::size_t>(state.range(0));
  Matrix input = make_spd(n, 11);
  for (auto _ : state) {
    Matrix a = input;
    kFn(a, n);
    benchmark::DoNotOptimize(a.data());
    benchmark::ClobberMemory();
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(n) * n * n / 3);
}

BENCHMARK(BM_Form<cholesky_kij>)
    ->Name("right_looking_kij")
    ->RangeMultiplier(2)
    ->Range(128, 1024)
    ->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_Form<cholesky_kji>)
    ->Name("right_looking_kji")
    ->RangeMultiplier(2)
    ->Range(128, 1024)
    ->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_Form<cholesky_jki>)
    ->Name("left_looking_jki")
    ->RangeMultiplier(2)
    ->Range(128, 1024)
    ->Unit(benchmark::kMicrosecond);

}  // namespace

BENCHMARK_MAIN();
