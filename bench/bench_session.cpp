// TransformSession amortization: cold vs. warm candidate evaluation.
//
// The session layer exists because the paper's workflow probes many
// candidate matrices against one program. This benchmark quantifies
// what the session amortizes on the LU/Cholesky order sweeps:
//
//  * Cold      — a fresh session per batch: dependence analysis plus
//                every Fourier–Motzkin projection from scratch.
//  * Warm      — one session, repeated batches: analysis amortized and
//                projections served from the ProjectionCache.
//  * NoCache   — warm analysis but the projection cache cleared before
//                every batch, isolating the cache's contribution.
//  * Threads   — evaluate_all across the session thread pool.
//
// Candidates are the legal loop orders of the §6 Cholesky (KIJL
// permutations) and LU; per-candidate evaluation is legality + full
// code generation.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <cstring>
#include <fstream>
#include <string>

#include "ir/gallery.hpp"
#include "pipeline/session.hpp"
#include "support/stats.hpp"
#include "support/trace.hpp"
#include "transform/transforms.hpp"

namespace {

using namespace inlt;

// The six K/I/J/L orders of the full Cholesky (test_six_permutations
// exercises the same sweep through the free functions).
std::vector<IntMat> cholesky_candidates(const IvLayout& layout) {
  std::vector<IntMat> out;
  const std::vector<std::vector<std::string>> orders = {
      {"K", "I", "J", "L"}, {"K", "J", "L", "I"}, {"K", "J", "I", "L"},
      {"J", "K", "L", "I"}, {"J", "L", "K", "I"}, {"I", "K", "J", "L"},
  };
  for (const auto& order : orders)
    out.push_back(loop_permutation(layout, order));
  return out;
}

void BM_SessionCold(benchmark::State& state) {
  Program p = gallery::cholesky();
  int legal = 0;
  for (auto _ : state) {
    TransformSession session(p);  // re-analyzes every iteration
    std::vector<IntMat> cands = cholesky_candidates(session.layout());
    for (const IntMat& m : cands) {
      CandidateResult r = session.evaluate(m);
      legal += r.legal ? 1 : 0;
    }
    session.projection_cache().clear();
    benchmark::DoNotOptimize(legal);
  }
  state.counters["legal"] = legal == 0 ? 0 : 1;
}
BENCHMARK(BM_SessionCold)->Unit(benchmark::kMillisecond);

void BM_SessionWarm(benchmark::State& state) {
  Program p = gallery::cholesky();
  TransformSession session(p);
  std::vector<IntMat> cands = cholesky_candidates(session.layout());
  // Prime the cache once so every timed batch is fully warm.
  for (const IntMat& m : cands) session.evaluate(m);
  int legal = 0;
  StatsSnapshot before = Stats::global().snapshot();
  for (auto _ : state) {
    for (const IntMat& m : cands) {
      CandidateResult r = session.evaluate(m);
      legal += r.legal ? 1 : 0;
    }
    benchmark::DoNotOptimize(legal);
  }
  StatsSnapshot delta = Stats::global().snapshot() - before;
  state.counters["cache_entries"] =
      static_cast<double>(session.projection_cache().size());
  // Fully warm batches must not miss: every projection is a cache hit.
  state.counters["cache_hits"] =
      benchmark::Counter(static_cast<double>(delta.counter("fm.cache_hits")),
                         benchmark::Counter::kAvgIterations);
  state.counters["cache_misses"] =
      static_cast<double>(delta.counter("fm.cache_misses"));
}
BENCHMARK(BM_SessionWarm)->Unit(benchmark::kMillisecond);

void BM_SessionWarmNoCache(benchmark::State& state) {
  // Amortized analysis but no projection reuse: the gap to
  // BM_SessionWarm is the cache's contribution alone.
  Program p = gallery::cholesky();
  TransformSession session(p);
  std::vector<IntMat> cands = cholesky_candidates(session.layout());
  int legal = 0;
  for (auto _ : state) {
    session.projection_cache().clear();
    for (const IntMat& m : cands) {
      CandidateResult r = session.evaluate(m);
      legal += r.legal ? 1 : 0;
    }
    benchmark::DoNotOptimize(legal);
  }
}
BENCHMARK(BM_SessionWarmNoCache)->Unit(benchmark::kMillisecond);

void BM_SessionEvaluateAll(benchmark::State& state) {
  Program p = gallery::cholesky();
  SessionOptions opts;
  opts.threads = static_cast<int>(state.range(0));
  TransformSession session(p, opts);
  std::vector<IntMat> cands = cholesky_candidates(session.layout());
  for (const IntMat& m : cands) session.evaluate(m);  // warm the cache
  for (auto _ : state) {
    std::vector<CandidateResult> rs = session.evaluate_all(cands);
    benchmark::DoNotOptimize(rs.size());
  }
}
BENCHMARK(BM_SessionEvaluateAll)->Arg(1)->Arg(4)->Unit(benchmark::kMillisecond);

void BM_SessionLuSweep(benchmark::State& state) {
  // Same shape on LU: 24 permutations of K/I/J/L — illegal ones are
  // rejected by the cached legality path, legal ones fully generated.
  Program p = gallery::lu();
  bool warm = state.range(0) != 0;
  TransformSession session(p);
  std::vector<std::string> vars = {"K", "I", "J", "L"};
  std::vector<IntMat> cands;
  std::vector<std::string> order = vars;
  std::sort(order.begin(), order.end());
  do {
    cands.push_back(loop_permutation(session.layout(), order));
  } while (std::next_permutation(order.begin(), order.end()));
  if (warm)
    for (const IntMat& m : cands) session.evaluate(m);
  int legal = 0;
  for (auto _ : state) {
    if (!warm) session.projection_cache().clear();
    for (const IntMat& m : cands) legal += session.evaluate(m).legal ? 1 : 0;
    benchmark::DoNotOptimize(legal);
  }
  state.SetLabel(warm ? "warm" : "analysis-only");
  state.counters["candidates"] = static_cast<double>(cands.size());
}
BENCHMARK(BM_SessionLuSweep)->Arg(0)->Arg(1)->Unit(benchmark::kMillisecond);

}  // namespace

// BENCHMARK_MAIN() plus a --trace-out=FILE flag: when given, span
// tracing is enabled for the whole run and the merged Chrome trace is
// written on exit (the flag is stripped before google-benchmark sees
// the argument list).
int main(int argc, char** argv) {
  std::string trace_path;
  int kept = 1;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--trace-out=", 12) == 0)
      trace_path = argv[i] + 12;
    else
      argv[kept++] = argv[i];
  }
  argc = kept;
  if (!trace_path.empty()) inlt::Tracer::global().enable();

  ::benchmark::Initialize(&argc, argv);
  if (::benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  ::benchmark::RunSpecifiedBenchmarks();
  ::benchmark::Shutdown();

  if (!trace_path.empty()) {
    std::ofstream out(trace_path);
    out << inlt::Tracer::global().chrome_trace_json() << "\n";
    std::fprintf(stderr, "wrote %s (%lld trace events)\n", trace_path.c_str(),
                 static_cast<long long>(
                     inlt::Tracer::global().event_count()));
  }
  return 0;
}
