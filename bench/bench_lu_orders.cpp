// Companion to C2 for the second classical factorization: LU loop
// orderings ("matrix factorization codes" generally are §1's
// motivating imperfect nests).
#include <benchmark/benchmark.h>

#include "kernels/lu.hpp"

namespace {

using namespace inlt::kernels;

void BM_Lu(benchmark::State& state) {
  auto variant = lu_variants()[static_cast<size_t>(state.range(0))];
  std::size_t n = static_cast<std::size_t>(state.range(1));
  Matrix input = make_dd(n, 5);
  for (auto _ : state) {
    Matrix a = input;
    variant.fn(a, n);
    benchmark::DoNotOptimize(a.data());
    benchmark::ClobberMemory();
  }
  state.SetLabel(variant.name);
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(n) * n * n * 2 / 3);
}

void Lu_Args(benchmark::internal::Benchmark* b) {
  for (int v = 0; v < 4; ++v)
    for (int n : {64, 128, 256, 512}) b->Args({v, n});
}

BENCHMARK(BM_Lu)->Apply(Lu_Args)->Unit(benchmark::kMicrosecond);

}  // namespace

BENCHMARK_MAIN();
