# Empty dependencies file for test_hermite_smith.
# This may be replaced when dependencies are built.
