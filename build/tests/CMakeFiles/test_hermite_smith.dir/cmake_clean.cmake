file(REMOVE_RECURSE
  "CMakeFiles/test_hermite_smith.dir/linalg/test_hermite_smith.cpp.o"
  "CMakeFiles/test_hermite_smith.dir/linalg/test_hermite_smith.cpp.o.d"
  "test_hermite_smith"
  "test_hermite_smith.pdb"
  "test_hermite_smith[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_hermite_smith.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
