file(REMOVE_RECURSE
  "CMakeFiles/test_schedule_baseline.dir/transform/test_schedule_baseline.cpp.o"
  "CMakeFiles/test_schedule_baseline.dir/transform/test_schedule_baseline.cpp.o.d"
  "test_schedule_baseline"
  "test_schedule_baseline.pdb"
  "test_schedule_baseline[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_schedule_baseline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
