
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/transform/test_schedule_baseline.cpp" "tests/CMakeFiles/test_schedule_baseline.dir/transform/test_schedule_baseline.cpp.o" "gcc" "tests/CMakeFiles/test_schedule_baseline.dir/transform/test_schedule_baseline.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/tests/CMakeFiles/inlt_testutil.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/inlt_support.dir/DependInfo.cmake"
  "/root/repo/build/src/linalg/CMakeFiles/inlt_linalg.dir/DependInfo.cmake"
  "/root/repo/build/src/ir/CMakeFiles/inlt_ir.dir/DependInfo.cmake"
  "/root/repo/build/src/instance/CMakeFiles/inlt_instance.dir/DependInfo.cmake"
  "/root/repo/build/src/dependence/CMakeFiles/inlt_dependence.dir/DependInfo.cmake"
  "/root/repo/build/src/transform/CMakeFiles/inlt_transform.dir/DependInfo.cmake"
  "/root/repo/build/src/codegen/CMakeFiles/inlt_codegen.dir/DependInfo.cmake"
  "/root/repo/build/src/exec/CMakeFiles/inlt_exec.dir/DependInfo.cmake"
  "/root/repo/build/src/kernels/CMakeFiles/inlt_kernels.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
