# Empty dependencies file for test_schedule_baseline.
# This may be replaced when dependencies are built.
