file(REMOVE_RECURSE
  "CMakeFiles/test_pad_ablation.dir/codegen/test_pad_ablation.cpp.o"
  "CMakeFiles/test_pad_ablation.dir/codegen/test_pad_ablation.cpp.o.d"
  "test_pad_ablation"
  "test_pad_ablation.pdb"
  "test_pad_ablation[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_pad_ablation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
