# Empty compiler generated dependencies file for test_skew_codegen.
# This may be replaced when dependencies are built.
