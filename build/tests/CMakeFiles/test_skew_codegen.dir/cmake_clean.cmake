file(REMOVE_RECURSE
  "CMakeFiles/test_skew_codegen.dir/codegen/test_skew_codegen.cpp.o"
  "CMakeFiles/test_skew_codegen.dir/codegen/test_skew_codegen.cpp.o.d"
  "test_skew_codegen"
  "test_skew_codegen.pdb"
  "test_skew_codegen[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_skew_codegen.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
