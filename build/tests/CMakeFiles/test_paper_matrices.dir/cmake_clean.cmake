file(REMOVE_RECURSE
  "CMakeFiles/test_paper_matrices.dir/transform/test_paper_matrices.cpp.o"
  "CMakeFiles/test_paper_matrices.dir/transform/test_paper_matrices.cpp.o.d"
  "test_paper_matrices"
  "test_paper_matrices.pdb"
  "test_paper_matrices[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_paper_matrices.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
