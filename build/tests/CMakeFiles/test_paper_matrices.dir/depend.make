# Empty dependencies file for test_paper_matrices.
# This may be replaced when dependencies are built.
