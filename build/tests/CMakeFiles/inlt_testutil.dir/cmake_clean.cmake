file(REMOVE_RECURSE
  "CMakeFiles/inlt_testutil.dir/common/brute_force.cpp.o"
  "CMakeFiles/inlt_testutil.dir/common/brute_force.cpp.o.d"
  "libinlt_testutil.a"
  "libinlt_testutil.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/inlt_testutil.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
