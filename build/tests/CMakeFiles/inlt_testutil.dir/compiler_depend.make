# Empty compiler generated dependencies file for inlt_testutil.
# This may be replaced when dependencies are built.
