file(REMOVE_RECURSE
  "libinlt_testutil.a"
)
