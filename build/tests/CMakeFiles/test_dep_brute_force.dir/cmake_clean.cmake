file(REMOVE_RECURSE
  "CMakeFiles/test_dep_brute_force.dir/dependence/test_brute_force.cpp.o"
  "CMakeFiles/test_dep_brute_force.dir/dependence/test_brute_force.cpp.o.d"
  "test_dep_brute_force"
  "test_dep_brute_force.pdb"
  "test_dep_brute_force[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_dep_brute_force.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
