file(REMOVE_RECURSE
  "CMakeFiles/test_distribution_legality.dir/transform/test_distribution_legality.cpp.o"
  "CMakeFiles/test_distribution_legality.dir/transform/test_distribution_legality.cpp.o.d"
  "test_distribution_legality"
  "test_distribution_legality.pdb"
  "test_distribution_legality[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_distribution_legality.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
