# Empty compiler generated dependencies file for test_distribution_legality.
# This may be replaced when dependencies are built.
