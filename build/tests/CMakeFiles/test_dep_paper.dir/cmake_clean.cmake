file(REMOVE_RECURSE
  "CMakeFiles/test_dep_paper.dir/dependence/test_paper_examples.cpp.o"
  "CMakeFiles/test_dep_paper.dir/dependence/test_paper_examples.cpp.o.d"
  "test_dep_paper"
  "test_dep_paper.pdb"
  "test_dep_paper[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_dep_paper.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
