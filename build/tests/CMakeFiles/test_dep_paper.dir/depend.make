# Empty dependencies file for test_dep_paper.
# This may be replaced when dependencies are built.
