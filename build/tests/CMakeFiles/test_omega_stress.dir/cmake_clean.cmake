file(REMOVE_RECURSE
  "CMakeFiles/test_omega_stress.dir/linalg/test_omega_stress.cpp.o"
  "CMakeFiles/test_omega_stress.dir/linalg/test_omega_stress.cpp.o.d"
  "test_omega_stress"
  "test_omega_stress.pdb"
  "test_omega_stress[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_omega_stress.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
