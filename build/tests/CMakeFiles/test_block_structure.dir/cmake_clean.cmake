file(REMOVE_RECURSE
  "CMakeFiles/test_block_structure.dir/transform/test_block_structure.cpp.o"
  "CMakeFiles/test_block_structure.dir/transform/test_block_structure.cpp.o.d"
  "test_block_structure"
  "test_block_structure.pdb"
  "test_block_structure[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_block_structure.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
