# Empty compiler generated dependencies file for test_block_structure.
# This may be replaced when dependencies are built.
