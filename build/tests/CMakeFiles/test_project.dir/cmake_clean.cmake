file(REMOVE_RECURSE
  "CMakeFiles/test_project.dir/linalg/test_project.cpp.o"
  "CMakeFiles/test_project.dir/linalg/test_project.cpp.o.d"
  "test_project"
  "test_project.pdb"
  "test_project[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_project.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
