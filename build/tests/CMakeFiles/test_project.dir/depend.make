# Empty dependencies file for test_project.
# This may be replaced when dependencies are built.
