file(REMOVE_RECURSE
  "CMakeFiles/test_completion_unit.dir/transform/test_completion_unit.cpp.o"
  "CMakeFiles/test_completion_unit.dir/transform/test_completion_unit.cpp.o.d"
  "test_completion_unit"
  "test_completion_unit.pdb"
  "test_completion_unit[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_completion_unit.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
