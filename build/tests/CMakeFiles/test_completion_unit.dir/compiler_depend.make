# Empty compiler generated dependencies file for test_completion_unit.
# This may be replaced when dependencies are built.
