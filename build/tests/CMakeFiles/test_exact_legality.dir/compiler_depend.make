# Empty compiler generated dependencies file for test_exact_legality.
# This may be replaced when dependencies are built.
