file(REMOVE_RECURSE
  "CMakeFiles/test_exact_legality.dir/transform/test_exact_legality.cpp.o"
  "CMakeFiles/test_exact_legality.dir/transform/test_exact_legality.cpp.o.d"
  "test_exact_legality"
  "test_exact_legality.pdb"
  "test_exact_legality[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_exact_legality.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
