file(REMOVE_RECURSE
  "CMakeFiles/test_lu_pipeline.dir/transform/test_lu_pipeline.cpp.o"
  "CMakeFiles/test_lu_pipeline.dir/transform/test_lu_pipeline.cpp.o.d"
  "test_lu_pipeline"
  "test_lu_pipeline.pdb"
  "test_lu_pipeline[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_lu_pipeline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
