# Empty dependencies file for test_lu_pipeline.
# This may be replaced when dependencies are built.
