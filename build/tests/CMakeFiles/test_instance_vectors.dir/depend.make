# Empty dependencies file for test_instance_vectors.
# This may be replaced when dependencies are built.
