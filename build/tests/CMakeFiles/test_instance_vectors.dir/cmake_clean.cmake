file(REMOVE_RECURSE
  "CMakeFiles/test_instance_vectors.dir/instance/test_instance_vectors.cpp.o"
  "CMakeFiles/test_instance_vectors.dir/instance/test_instance_vectors.cpp.o.d"
  "test_instance_vectors"
  "test_instance_vectors.pdb"
  "test_instance_vectors[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_instance_vectors.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
