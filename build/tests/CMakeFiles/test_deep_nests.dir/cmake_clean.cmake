file(REMOVE_RECURSE
  "CMakeFiles/test_deep_nests.dir/codegen/test_deep_nests.cpp.o"
  "CMakeFiles/test_deep_nests.dir/codegen/test_deep_nests.cpp.o.d"
  "test_deep_nests"
  "test_deep_nests.pdb"
  "test_deep_nests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_deep_nests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
