# Empty compiler generated dependencies file for test_deep_nests.
# This may be replaced when dependencies are built.
