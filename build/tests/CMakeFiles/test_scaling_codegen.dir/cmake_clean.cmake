file(REMOVE_RECURSE
  "CMakeFiles/test_scaling_codegen.dir/codegen/test_scaling_codegen.cpp.o"
  "CMakeFiles/test_scaling_codegen.dir/codegen/test_scaling_codegen.cpp.o.d"
  "test_scaling_codegen"
  "test_scaling_codegen.pdb"
  "test_scaling_codegen[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_scaling_codegen.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
