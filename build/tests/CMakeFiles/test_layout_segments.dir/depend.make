# Empty dependencies file for test_layout_segments.
# This may be replaced when dependencies are built.
