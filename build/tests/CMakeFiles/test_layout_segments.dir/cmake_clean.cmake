file(REMOVE_RECURSE
  "CMakeFiles/test_layout_segments.dir/instance/test_layout_segments.cpp.o"
  "CMakeFiles/test_layout_segments.dir/instance/test_layout_segments.cpp.o.d"
  "test_layout_segments"
  "test_layout_segments.pdb"
  "test_layout_segments[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_layout_segments.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
