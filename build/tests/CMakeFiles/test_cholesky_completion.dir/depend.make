# Empty dependencies file for test_cholesky_completion.
# This may be replaced when dependencies are built.
