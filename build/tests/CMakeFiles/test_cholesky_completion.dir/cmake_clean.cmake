file(REMOVE_RECURSE
  "CMakeFiles/test_cholesky_completion.dir/transform/test_cholesky_completion.cpp.o"
  "CMakeFiles/test_cholesky_completion.dir/transform/test_cholesky_completion.cpp.o.d"
  "test_cholesky_completion"
  "test_cholesky_completion.pdb"
  "test_cholesky_completion[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_cholesky_completion.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
