file(REMOVE_RECURSE
  "CMakeFiles/test_six_permutations.dir/transform/test_six_permutations.cpp.o"
  "CMakeFiles/test_six_permutations.dir/transform/test_six_permutations.cpp.o.d"
  "test_six_permutations"
  "test_six_permutations.pdb"
  "test_six_permutations[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_six_permutations.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
