# Empty compiler generated dependencies file for test_six_permutations.
# This may be replaced when dependencies are built.
