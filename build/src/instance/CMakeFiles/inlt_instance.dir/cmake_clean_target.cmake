file(REMOVE_RECURSE
  "libinlt_instance.a"
)
