file(REMOVE_RECURSE
  "CMakeFiles/inlt_instance.dir/enumerate.cpp.o"
  "CMakeFiles/inlt_instance.dir/enumerate.cpp.o.d"
  "CMakeFiles/inlt_instance.dir/layout.cpp.o"
  "CMakeFiles/inlt_instance.dir/layout.cpp.o.d"
  "CMakeFiles/inlt_instance.dir/program_order.cpp.o"
  "CMakeFiles/inlt_instance.dir/program_order.cpp.o.d"
  "libinlt_instance.a"
  "libinlt_instance.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/inlt_instance.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
