# Empty compiler generated dependencies file for inlt_instance.
# This may be replaced when dependencies are built.
