
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/instance/enumerate.cpp" "src/instance/CMakeFiles/inlt_instance.dir/enumerate.cpp.o" "gcc" "src/instance/CMakeFiles/inlt_instance.dir/enumerate.cpp.o.d"
  "/root/repo/src/instance/layout.cpp" "src/instance/CMakeFiles/inlt_instance.dir/layout.cpp.o" "gcc" "src/instance/CMakeFiles/inlt_instance.dir/layout.cpp.o.d"
  "/root/repo/src/instance/program_order.cpp" "src/instance/CMakeFiles/inlt_instance.dir/program_order.cpp.o" "gcc" "src/instance/CMakeFiles/inlt_instance.dir/program_order.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/ir/CMakeFiles/inlt_ir.dir/DependInfo.cmake"
  "/root/repo/build/src/linalg/CMakeFiles/inlt_linalg.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/inlt_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
