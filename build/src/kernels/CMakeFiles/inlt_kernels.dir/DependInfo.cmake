
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/kernels/cholesky.cpp" "src/kernels/CMakeFiles/inlt_kernels.dir/cholesky.cpp.o" "gcc" "src/kernels/CMakeFiles/inlt_kernels.dir/cholesky.cpp.o.d"
  "/root/repo/src/kernels/lu.cpp" "src/kernels/CMakeFiles/inlt_kernels.dir/lu.cpp.o" "gcc" "src/kernels/CMakeFiles/inlt_kernels.dir/lu.cpp.o.d"
  "/root/repo/src/kernels/skew.cpp" "src/kernels/CMakeFiles/inlt_kernels.dir/skew.cpp.o" "gcc" "src/kernels/CMakeFiles/inlt_kernels.dir/skew.cpp.o.d"
  "/root/repo/src/kernels/stencil.cpp" "src/kernels/CMakeFiles/inlt_kernels.dir/stencil.cpp.o" "gcc" "src/kernels/CMakeFiles/inlt_kernels.dir/stencil.cpp.o.d"
  "/root/repo/src/kernels/util.cpp" "src/kernels/CMakeFiles/inlt_kernels.dir/util.cpp.o" "gcc" "src/kernels/CMakeFiles/inlt_kernels.dir/util.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
