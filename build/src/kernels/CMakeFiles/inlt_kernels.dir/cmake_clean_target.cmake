file(REMOVE_RECURSE
  "libinlt_kernels.a"
)
