file(REMOVE_RECURSE
  "CMakeFiles/inlt_kernels.dir/cholesky.cpp.o"
  "CMakeFiles/inlt_kernels.dir/cholesky.cpp.o.d"
  "CMakeFiles/inlt_kernels.dir/lu.cpp.o"
  "CMakeFiles/inlt_kernels.dir/lu.cpp.o.d"
  "CMakeFiles/inlt_kernels.dir/skew.cpp.o"
  "CMakeFiles/inlt_kernels.dir/skew.cpp.o.d"
  "CMakeFiles/inlt_kernels.dir/stencil.cpp.o"
  "CMakeFiles/inlt_kernels.dir/stencil.cpp.o.d"
  "CMakeFiles/inlt_kernels.dir/util.cpp.o"
  "CMakeFiles/inlt_kernels.dir/util.cpp.o.d"
  "libinlt_kernels.a"
  "libinlt_kernels.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/inlt_kernels.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
