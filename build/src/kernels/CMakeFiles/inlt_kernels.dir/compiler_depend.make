# Empty compiler generated dependencies file for inlt_kernels.
# This may be replaced when dependencies are built.
