file(REMOVE_RECURSE
  "libinlt_exec.a"
)
