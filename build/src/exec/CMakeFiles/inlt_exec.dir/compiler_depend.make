# Empty compiler generated dependencies file for inlt_exec.
# This may be replaced when dependencies are built.
