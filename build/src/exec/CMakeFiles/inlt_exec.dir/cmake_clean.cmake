file(REMOVE_RECURSE
  "CMakeFiles/inlt_exec.dir/array.cpp.o"
  "CMakeFiles/inlt_exec.dir/array.cpp.o.d"
  "CMakeFiles/inlt_exec.dir/interp.cpp.o"
  "CMakeFiles/inlt_exec.dir/interp.cpp.o.d"
  "CMakeFiles/inlt_exec.dir/trace.cpp.o"
  "CMakeFiles/inlt_exec.dir/trace.cpp.o.d"
  "CMakeFiles/inlt_exec.dir/verify.cpp.o"
  "CMakeFiles/inlt_exec.dir/verify.cpp.o.d"
  "libinlt_exec.a"
  "libinlt_exec.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/inlt_exec.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
