
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/exec/array.cpp" "src/exec/CMakeFiles/inlt_exec.dir/array.cpp.o" "gcc" "src/exec/CMakeFiles/inlt_exec.dir/array.cpp.o.d"
  "/root/repo/src/exec/interp.cpp" "src/exec/CMakeFiles/inlt_exec.dir/interp.cpp.o" "gcc" "src/exec/CMakeFiles/inlt_exec.dir/interp.cpp.o.d"
  "/root/repo/src/exec/trace.cpp" "src/exec/CMakeFiles/inlt_exec.dir/trace.cpp.o" "gcc" "src/exec/CMakeFiles/inlt_exec.dir/trace.cpp.o.d"
  "/root/repo/src/exec/verify.cpp" "src/exec/CMakeFiles/inlt_exec.dir/verify.cpp.o" "gcc" "src/exec/CMakeFiles/inlt_exec.dir/verify.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/ir/CMakeFiles/inlt_ir.dir/DependInfo.cmake"
  "/root/repo/build/src/linalg/CMakeFiles/inlt_linalg.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/inlt_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
