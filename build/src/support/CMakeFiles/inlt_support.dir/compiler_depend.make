# Empty compiler generated dependencies file for inlt_support.
# This may be replaced when dependencies are built.
