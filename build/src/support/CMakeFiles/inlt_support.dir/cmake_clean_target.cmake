file(REMOVE_RECURSE
  "libinlt_support.a"
)
