file(REMOVE_RECURSE
  "CMakeFiles/inlt_support.dir/check.cpp.o"
  "CMakeFiles/inlt_support.dir/check.cpp.o.d"
  "libinlt_support.a"
  "libinlt_support.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/inlt_support.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
