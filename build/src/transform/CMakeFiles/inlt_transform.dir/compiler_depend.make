# Empty compiler generated dependencies file for inlt_transform.
# This may be replaced when dependencies are built.
