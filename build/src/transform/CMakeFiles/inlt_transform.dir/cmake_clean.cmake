file(REMOVE_RECURSE
  "CMakeFiles/inlt_transform.dir/block_structure.cpp.o"
  "CMakeFiles/inlt_transform.dir/block_structure.cpp.o.d"
  "CMakeFiles/inlt_transform.dir/completion.cpp.o"
  "CMakeFiles/inlt_transform.dir/completion.cpp.o.d"
  "CMakeFiles/inlt_transform.dir/exact_legality.cpp.o"
  "CMakeFiles/inlt_transform.dir/exact_legality.cpp.o.d"
  "CMakeFiles/inlt_transform.dir/legality.cpp.o"
  "CMakeFiles/inlt_transform.dir/legality.cpp.o.d"
  "CMakeFiles/inlt_transform.dir/parallel.cpp.o"
  "CMakeFiles/inlt_transform.dir/parallel.cpp.o.d"
  "CMakeFiles/inlt_transform.dir/per_statement.cpp.o"
  "CMakeFiles/inlt_transform.dir/per_statement.cpp.o.d"
  "CMakeFiles/inlt_transform.dir/schedule_baseline.cpp.o"
  "CMakeFiles/inlt_transform.dir/schedule_baseline.cpp.o.d"
  "CMakeFiles/inlt_transform.dir/transforms.cpp.o"
  "CMakeFiles/inlt_transform.dir/transforms.cpp.o.d"
  "libinlt_transform.a"
  "libinlt_transform.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/inlt_transform.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
