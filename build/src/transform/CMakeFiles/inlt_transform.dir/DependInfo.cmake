
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/transform/block_structure.cpp" "src/transform/CMakeFiles/inlt_transform.dir/block_structure.cpp.o" "gcc" "src/transform/CMakeFiles/inlt_transform.dir/block_structure.cpp.o.d"
  "/root/repo/src/transform/completion.cpp" "src/transform/CMakeFiles/inlt_transform.dir/completion.cpp.o" "gcc" "src/transform/CMakeFiles/inlt_transform.dir/completion.cpp.o.d"
  "/root/repo/src/transform/exact_legality.cpp" "src/transform/CMakeFiles/inlt_transform.dir/exact_legality.cpp.o" "gcc" "src/transform/CMakeFiles/inlt_transform.dir/exact_legality.cpp.o.d"
  "/root/repo/src/transform/legality.cpp" "src/transform/CMakeFiles/inlt_transform.dir/legality.cpp.o" "gcc" "src/transform/CMakeFiles/inlt_transform.dir/legality.cpp.o.d"
  "/root/repo/src/transform/parallel.cpp" "src/transform/CMakeFiles/inlt_transform.dir/parallel.cpp.o" "gcc" "src/transform/CMakeFiles/inlt_transform.dir/parallel.cpp.o.d"
  "/root/repo/src/transform/per_statement.cpp" "src/transform/CMakeFiles/inlt_transform.dir/per_statement.cpp.o" "gcc" "src/transform/CMakeFiles/inlt_transform.dir/per_statement.cpp.o.d"
  "/root/repo/src/transform/schedule_baseline.cpp" "src/transform/CMakeFiles/inlt_transform.dir/schedule_baseline.cpp.o" "gcc" "src/transform/CMakeFiles/inlt_transform.dir/schedule_baseline.cpp.o.d"
  "/root/repo/src/transform/transforms.cpp" "src/transform/CMakeFiles/inlt_transform.dir/transforms.cpp.o" "gcc" "src/transform/CMakeFiles/inlt_transform.dir/transforms.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/dependence/CMakeFiles/inlt_dependence.dir/DependInfo.cmake"
  "/root/repo/build/src/instance/CMakeFiles/inlt_instance.dir/DependInfo.cmake"
  "/root/repo/build/src/ir/CMakeFiles/inlt_ir.dir/DependInfo.cmake"
  "/root/repo/build/src/linalg/CMakeFiles/inlt_linalg.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/inlt_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
