file(REMOVE_RECURSE
  "libinlt_transform.a"
)
