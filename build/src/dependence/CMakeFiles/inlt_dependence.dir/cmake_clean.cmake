file(REMOVE_RECURSE
  "CMakeFiles/inlt_dependence.dir/analyzer.cpp.o"
  "CMakeFiles/inlt_dependence.dir/analyzer.cpp.o.d"
  "CMakeFiles/inlt_dependence.dir/direction.cpp.o"
  "CMakeFiles/inlt_dependence.dir/direction.cpp.o.d"
  "CMakeFiles/inlt_dependence.dir/system.cpp.o"
  "CMakeFiles/inlt_dependence.dir/system.cpp.o.d"
  "libinlt_dependence.a"
  "libinlt_dependence.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/inlt_dependence.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
