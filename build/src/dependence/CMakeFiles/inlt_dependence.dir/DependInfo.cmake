
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/dependence/analyzer.cpp" "src/dependence/CMakeFiles/inlt_dependence.dir/analyzer.cpp.o" "gcc" "src/dependence/CMakeFiles/inlt_dependence.dir/analyzer.cpp.o.d"
  "/root/repo/src/dependence/direction.cpp" "src/dependence/CMakeFiles/inlt_dependence.dir/direction.cpp.o" "gcc" "src/dependence/CMakeFiles/inlt_dependence.dir/direction.cpp.o.d"
  "/root/repo/src/dependence/system.cpp" "src/dependence/CMakeFiles/inlt_dependence.dir/system.cpp.o" "gcc" "src/dependence/CMakeFiles/inlt_dependence.dir/system.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/instance/CMakeFiles/inlt_instance.dir/DependInfo.cmake"
  "/root/repo/build/src/ir/CMakeFiles/inlt_ir.dir/DependInfo.cmake"
  "/root/repo/build/src/linalg/CMakeFiles/inlt_linalg.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/inlt_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
