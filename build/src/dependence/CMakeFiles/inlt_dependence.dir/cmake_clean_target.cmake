file(REMOVE_RECURSE
  "libinlt_dependence.a"
)
