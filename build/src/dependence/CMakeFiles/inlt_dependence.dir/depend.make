# Empty dependencies file for inlt_dependence.
# This may be replaced when dependencies are built.
