
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/linalg/constraint.cpp" "src/linalg/CMakeFiles/inlt_linalg.dir/constraint.cpp.o" "gcc" "src/linalg/CMakeFiles/inlt_linalg.dir/constraint.cpp.o.d"
  "/root/repo/src/linalg/gauss.cpp" "src/linalg/CMakeFiles/inlt_linalg.dir/gauss.cpp.o" "gcc" "src/linalg/CMakeFiles/inlt_linalg.dir/gauss.cpp.o.d"
  "/root/repo/src/linalg/hermite.cpp" "src/linalg/CMakeFiles/inlt_linalg.dir/hermite.cpp.o" "gcc" "src/linalg/CMakeFiles/inlt_linalg.dir/hermite.cpp.o.d"
  "/root/repo/src/linalg/matrix.cpp" "src/linalg/CMakeFiles/inlt_linalg.dir/matrix.cpp.o" "gcc" "src/linalg/CMakeFiles/inlt_linalg.dir/matrix.cpp.o.d"
  "/root/repo/src/linalg/project.cpp" "src/linalg/CMakeFiles/inlt_linalg.dir/project.cpp.o" "gcc" "src/linalg/CMakeFiles/inlt_linalg.dir/project.cpp.o.d"
  "/root/repo/src/linalg/rational.cpp" "src/linalg/CMakeFiles/inlt_linalg.dir/rational.cpp.o" "gcc" "src/linalg/CMakeFiles/inlt_linalg.dir/rational.cpp.o.d"
  "/root/repo/src/linalg/smith.cpp" "src/linalg/CMakeFiles/inlt_linalg.dir/smith.cpp.o" "gcc" "src/linalg/CMakeFiles/inlt_linalg.dir/smith.cpp.o.d"
  "/root/repo/src/linalg/vec.cpp" "src/linalg/CMakeFiles/inlt_linalg.dir/vec.cpp.o" "gcc" "src/linalg/CMakeFiles/inlt_linalg.dir/vec.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/support/CMakeFiles/inlt_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
