file(REMOVE_RECURSE
  "libinlt_linalg.a"
)
