file(REMOVE_RECURSE
  "CMakeFiles/inlt_linalg.dir/constraint.cpp.o"
  "CMakeFiles/inlt_linalg.dir/constraint.cpp.o.d"
  "CMakeFiles/inlt_linalg.dir/gauss.cpp.o"
  "CMakeFiles/inlt_linalg.dir/gauss.cpp.o.d"
  "CMakeFiles/inlt_linalg.dir/hermite.cpp.o"
  "CMakeFiles/inlt_linalg.dir/hermite.cpp.o.d"
  "CMakeFiles/inlt_linalg.dir/matrix.cpp.o"
  "CMakeFiles/inlt_linalg.dir/matrix.cpp.o.d"
  "CMakeFiles/inlt_linalg.dir/project.cpp.o"
  "CMakeFiles/inlt_linalg.dir/project.cpp.o.d"
  "CMakeFiles/inlt_linalg.dir/rational.cpp.o"
  "CMakeFiles/inlt_linalg.dir/rational.cpp.o.d"
  "CMakeFiles/inlt_linalg.dir/smith.cpp.o"
  "CMakeFiles/inlt_linalg.dir/smith.cpp.o.d"
  "CMakeFiles/inlt_linalg.dir/vec.cpp.o"
  "CMakeFiles/inlt_linalg.dir/vec.cpp.o.d"
  "libinlt_linalg.a"
  "libinlt_linalg.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/inlt_linalg.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
