# Empty dependencies file for inlt_linalg.
# This may be replaced when dependencies are built.
