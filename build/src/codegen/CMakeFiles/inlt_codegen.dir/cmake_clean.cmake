file(REMOVE_RECURSE
  "CMakeFiles/inlt_codegen.dir/generate.cpp.o"
  "CMakeFiles/inlt_codegen.dir/generate.cpp.o.d"
  "CMakeFiles/inlt_codegen.dir/simplify.cpp.o"
  "CMakeFiles/inlt_codegen.dir/simplify.cpp.o.d"
  "libinlt_codegen.a"
  "libinlt_codegen.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/inlt_codegen.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
