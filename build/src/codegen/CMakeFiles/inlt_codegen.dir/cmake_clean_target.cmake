file(REMOVE_RECURSE
  "libinlt_codegen.a"
)
