# Empty compiler generated dependencies file for inlt_codegen.
# This may be replaced when dependencies are built.
