file(REMOVE_RECURSE
  "libinlt_ir.a"
)
