# Empty compiler generated dependencies file for inlt_ir.
# This may be replaced when dependencies are built.
