
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/ir/affine.cpp" "src/ir/CMakeFiles/inlt_ir.dir/affine.cpp.o" "gcc" "src/ir/CMakeFiles/inlt_ir.dir/affine.cpp.o.d"
  "/root/repo/src/ir/ast.cpp" "src/ir/CMakeFiles/inlt_ir.dir/ast.cpp.o" "gcc" "src/ir/CMakeFiles/inlt_ir.dir/ast.cpp.o.d"
  "/root/repo/src/ir/gallery.cpp" "src/ir/CMakeFiles/inlt_ir.dir/gallery.cpp.o" "gcc" "src/ir/CMakeFiles/inlt_ir.dir/gallery.cpp.o.d"
  "/root/repo/src/ir/parser.cpp" "src/ir/CMakeFiles/inlt_ir.dir/parser.cpp.o" "gcc" "src/ir/CMakeFiles/inlt_ir.dir/parser.cpp.o.d"
  "/root/repo/src/ir/printer.cpp" "src/ir/CMakeFiles/inlt_ir.dir/printer.cpp.o" "gcc" "src/ir/CMakeFiles/inlt_ir.dir/printer.cpp.o.d"
  "/root/repo/src/ir/scalar.cpp" "src/ir/CMakeFiles/inlt_ir.dir/scalar.cpp.o" "gcc" "src/ir/CMakeFiles/inlt_ir.dir/scalar.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/linalg/CMakeFiles/inlt_linalg.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/inlt_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
