file(REMOVE_RECURSE
  "CMakeFiles/inlt_ir.dir/affine.cpp.o"
  "CMakeFiles/inlt_ir.dir/affine.cpp.o.d"
  "CMakeFiles/inlt_ir.dir/ast.cpp.o"
  "CMakeFiles/inlt_ir.dir/ast.cpp.o.d"
  "CMakeFiles/inlt_ir.dir/gallery.cpp.o"
  "CMakeFiles/inlt_ir.dir/gallery.cpp.o.d"
  "CMakeFiles/inlt_ir.dir/parser.cpp.o"
  "CMakeFiles/inlt_ir.dir/parser.cpp.o.d"
  "CMakeFiles/inlt_ir.dir/printer.cpp.o"
  "CMakeFiles/inlt_ir.dir/printer.cpp.o.d"
  "CMakeFiles/inlt_ir.dir/scalar.cpp.o"
  "CMakeFiles/inlt_ir.dir/scalar.cpp.o.d"
  "libinlt_ir.a"
  "libinlt_ir.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/inlt_ir.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
