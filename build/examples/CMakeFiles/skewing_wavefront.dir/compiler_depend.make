# Empty compiler generated dependencies file for skewing_wavefront.
# This may be replaced when dependencies are built.
