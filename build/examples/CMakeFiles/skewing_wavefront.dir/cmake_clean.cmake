file(REMOVE_RECURSE
  "CMakeFiles/skewing_wavefront.dir/skewing_wavefront.cpp.o"
  "CMakeFiles/skewing_wavefront.dir/skewing_wavefront.cpp.o.d"
  "skewing_wavefront"
  "skewing_wavefront.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/skewing_wavefront.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
