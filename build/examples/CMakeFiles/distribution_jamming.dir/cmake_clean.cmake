file(REMOVE_RECURSE
  "CMakeFiles/distribution_jamming.dir/distribution_jamming.cpp.o"
  "CMakeFiles/distribution_jamming.dir/distribution_jamming.cpp.o.d"
  "distribution_jamming"
  "distribution_jamming.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/distribution_jamming.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
