# Empty dependencies file for distribution_jamming.
# This may be replaced when dependencies are built.
