file(REMOVE_RECURSE
  "CMakeFiles/cholesky_permutations.dir/cholesky_permutations.cpp.o"
  "CMakeFiles/cholesky_permutations.dir/cholesky_permutations.cpp.o.d"
  "cholesky_permutations"
  "cholesky_permutations.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cholesky_permutations.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
