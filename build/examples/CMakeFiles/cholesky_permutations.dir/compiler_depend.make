# Empty compiler generated dependencies file for cholesky_permutations.
# This may be replaced when dependencies are built.
