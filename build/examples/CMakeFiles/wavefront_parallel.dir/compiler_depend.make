# Empty compiler generated dependencies file for wavefront_parallel.
# This may be replaced when dependencies are built.
