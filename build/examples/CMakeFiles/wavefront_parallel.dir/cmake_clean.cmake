file(REMOVE_RECURSE
  "CMakeFiles/wavefront_parallel.dir/wavefront_parallel.cpp.o"
  "CMakeFiles/wavefront_parallel.dir/wavefront_parallel.cpp.o.d"
  "wavefront_parallel"
  "wavefront_parallel.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wavefront_parallel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
