# CMake generated Testfile for 
# Source directory: /root/repo/examples
# Build directory: /root/repo/build/examples
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(example_quickstart "/root/repo/build/examples/quickstart")
set_tests_properties(example_quickstart PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;21;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_cholesky_permutations "/root/repo/build/examples/cholesky_permutations")
set_tests_properties(example_cholesky_permutations PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;21;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_skewing_wavefront "/root/repo/build/examples/skewing_wavefront")
set_tests_properties(example_skewing_wavefront PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;21;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_distribution_jamming "/root/repo/build/examples/distribution_jamming")
set_tests_properties(example_distribution_jamming PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;21;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_wavefront_parallel "/root/repo/build/examples/wavefront_parallel")
set_tests_properties(example_wavefront_parallel PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;21;add_test;/root/repo/examples/CMakeLists.txt;0;")
