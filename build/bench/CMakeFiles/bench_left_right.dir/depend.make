# Empty dependencies file for bench_left_right.
# This may be replaced when dependencies are built.
