file(REMOVE_RECURSE
  "CMakeFiles/bench_left_right.dir/bench_left_right.cpp.o"
  "CMakeFiles/bench_left_right.dir/bench_left_right.cpp.o.d"
  "bench_left_right"
  "bench_left_right.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_left_right.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
