file(REMOVE_RECURSE
  "CMakeFiles/bench_framework.dir/bench_framework.cpp.o"
  "CMakeFiles/bench_framework.dir/bench_framework.cpp.o.d"
  "bench_framework"
  "bench_framework.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_framework.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
