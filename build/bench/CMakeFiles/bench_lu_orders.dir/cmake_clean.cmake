file(REMOVE_RECURSE
  "CMakeFiles/bench_lu_orders.dir/bench_lu_orders.cpp.o"
  "CMakeFiles/bench_lu_orders.dir/bench_lu_orders.cpp.o.d"
  "bench_lu_orders"
  "bench_lu_orders.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_lu_orders.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
