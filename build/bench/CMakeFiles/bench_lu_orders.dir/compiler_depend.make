# Empty compiler generated dependencies file for bench_lu_orders.
# This may be replaced when dependencies are built.
