file(REMOVE_RECURSE
  "CMakeFiles/bench_wavefront.dir/bench_wavefront.cpp.o"
  "CMakeFiles/bench_wavefront.dir/bench_wavefront.cpp.o.d"
  "bench_wavefront"
  "bench_wavefront.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_wavefront.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
