# Empty dependencies file for bench_wavefront.
# This may be replaced when dependencies are built.
