file(REMOVE_RECURSE
  "CMakeFiles/bench_cholesky_orders.dir/bench_cholesky_orders.cpp.o"
  "CMakeFiles/bench_cholesky_orders.dir/bench_cholesky_orders.cpp.o.d"
  "bench_cholesky_orders"
  "bench_cholesky_orders.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_cholesky_orders.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
