# Empty compiler generated dependencies file for bench_cholesky_orders.
# This may be replaced when dependencies are built.
