# CMake generated Testfile for 
# Source directory: /root/repo/tools
# Build directory: /root/repo/build/tools
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(inltc_complete_cholesky "/root/repo/build/tools/inltc" "complete" "/root/repo/build/tools/testdata/cholesky.loop" "L" "--verify" "6")
set_tests_properties(inltc_complete_cholesky PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;10;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(inltc_transform_skew "/root/repo/build/tools/inltc" "transform" "/root/repo/build/tools/testdata/skew_example.loop" "skew" "I" "J" "-1" "--verify" "8")
set_tests_properties(inltc_transform_skew PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;12;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(inltc_analyze "/root/repo/build/tools/inltc" "analyze" "/root/repo/build/tools/testdata/cholesky.loop")
set_tests_properties(inltc_analyze PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;14;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(inltc_parallel "/root/repo/build/tools/inltc" "parallel" "/root/repo/build/tools/testdata/stencil.loop")
set_tests_properties(inltc_parallel PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;16;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(inltc_exact_transform "/root/repo/build/tools/inltc" "transform" "/root/repo/build/tools/testdata/stencil.loop" "skew" "I" "J" "1" "--exact" "--verify" "8")
set_tests_properties(inltc_exact_transform PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;18;add_test;/root/repo/tools/CMakeLists.txt;0;")
