# Empty compiler generated dependencies file for inltc.
# This may be replaced when dependencies are built.
