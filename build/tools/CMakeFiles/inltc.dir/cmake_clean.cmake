file(REMOVE_RECURSE
  "CMakeFiles/inltc.dir/inltc.cpp.o"
  "CMakeFiles/inltc.dir/inltc.cpp.o.d"
  "inltc"
  "inltc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/inltc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
